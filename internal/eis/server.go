package eis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/geo"
	"ecocharge/internal/obs"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/wire"
)

// ServerOptions configure the EIS.
type ServerOptions struct {
	// CacheCellM is the spatial granularity of the server-side dynamic
	// cache: offering requests landing in the same cell share a cached
	// table. 0 selects 2 km (conservative versus the client-side Q of 5 km).
	CacheCellM float64
	// CacheTTL bounds cached table age. 0 selects 5 minutes.
	CacheTTL time.Duration
	// Workers bounds the ranking parallelism per request: it is forwarded
	// to the engine's filtering phase and to RunTrip's per-segment pool, so
	// one trip evaluation uses at most Workers goroutines. 0 selects
	// GOMAXPROCS; 1 runs the sequential reference path.
	Workers int
	// CacheMaxEntries bounds the response cache across all shards; when a
	// shard fills, the entry closest to expiry is evicted. 0 selects 4096;
	// negative disables the bound.
	CacheMaxEntries int
	// RequestTimeout is the per-request deadline installed on every
	// request's context; handlers that outlive it answer 503 with
	// Retry-After instead of holding the connection. 0 selects 15 s;
	// negative disables the deadline.
	RequestTimeout time.Duration
	// ShedRetryAfter is the Retry-After delay stamped on shed (503)
	// responses. An overloaded shard in a fleet raises it to push hedged
	// gateway traffic toward its peers for longer instead of inviting an
	// immediate re-hit. 0 selects 1 s; sub-second values round up to 1 s
	// (the header carries whole seconds).
	ShedRetryAfter time.Duration
	// Clock is overridable for tests; nil selects time.Now.
	Clock func() time.Time
	// Logger for request errors; nil silences logging.
	Logger *log.Logger
	// Tracer exports one server span per API request, joining the caller's
	// trace when the request carries propagation headers. Nil disables
	// tracing at zero cost.
	Tracer *obs.Tracer
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.CacheCellM <= 0 {
		o.CacheCellM = 2000
	}
	if o.CacheTTL <= 0 {
		o.CacheTTL = 5 * time.Minute
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheMaxEntries == 0 {
		o.CacheMaxEntries = 4096
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 15 * time.Second
	}
	if o.ShedRetryAfter <= 0 {
		o.ShedRetryAfter = time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// retryAfterSeconds renders a shed delay as the whole-second header value,
// rounding up so a positive delay never collapses to "0".
func retryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// Server is the EcoCharge Information Server: it owns the environment and
// answers the consolidated-data and Mode 2 computation endpoints.
type Server struct {
	env    *cknn.Env
	engine cknn.Engine
	opts   ServerOptions

	cache   respCache
	flights flightGroup
	// computes counts cache-miss table computations (diagnostics and the
	// single-flight tests).
	computes atomic.Int64
}

type cacheKey struct {
	cellLat, cellLon int64
	k                int
	radiusM          int64
	weights          WeightsJSON
}

// cacheVal is one cached Offering Table, pre-encoded in both interchange
// formats at insertion time (with Cached=true, the flag every hit carries):
// encode once, write many. Hits serve the stored bytes with Content-Length
// and never re-marshal. The byte slices are immutable after put, so shards
// hand them out without copying.
type cacheVal struct {
	resp     OfferingResponse
	jsonBody []byte
	wireBody []byte
	expires  time.Time
}

// respCacheStripes is the shard count of the response cache: enough to keep
// concurrent offering requests off each other's locks, small enough that
// the fixed array stays cheap.
const respCacheStripes = 16

// sweepEvery is the amortization interval of the per-shard expiry sweep:
// every sweepEvery-th put walks its shard and deletes expired entries, so
// the cache's steady-state size is bounded by live entries plus one sweep
// interval of garbage (the old behavior never deleted expired entries and
// leaked every key ever cached).
const sweepEvery = 64

// respCache is the server-side dynamic cache, mutex-striped so concurrent
// requests landing in different spatial cells never contend. Keys are
// hashed (FNV-1a over the key's fixed-width fields) onto a shard; each
// shard is an independently locked map.
//
// Hygiene: get deletes expired entries it touches, put sweeps its shard
// every sweepEvery insertions, and a full shard evicts the entry closest to
// expiry before inserting (maxPerShard 0 disables the bound).
type respCache struct {
	shards [respCacheStripes]respShard
	// maxPerShard bounds each shard's entry count; 0 means unbounded.
	maxPerShard int
}

type respShard struct {
	mu   sync.Mutex
	m    map[cacheKey]cacheVal
	puts int // insertions since the last sweep
}

func (c *respCache) shard(key cacheKey) *respShard {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, v := range [...]uint64{
		uint64(key.cellLat), uint64(key.cellLon),
		uint64(key.k), uint64(key.radiusM),
		math.Float64bits(key.weights.L),
		math.Float64bits(key.weights.A),
		math.Float64bits(key.weights.D),
	} {
		h ^= v
		h *= 1099511628211 // FNV-1a prime
	}
	return &c.shards[h%respCacheStripes]
}

func (c *respCache) get(key cacheKey, now time.Time) (cacheVal, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		met.rescacheMisses.Inc()
		return cacheVal{}, false
	}
	if now.After(v.expires) {
		delete(s.m, key) // lazy expiry: reclaim on touch
		met.rescacheExpired.Inc()
		met.rescacheEntries.Dec()
		met.rescacheMisses.Inc()
		return cacheVal{}, false
	}
	met.rescacheHits.Inc()
	return v, true
}

func (c *respCache) put(key cacheKey, resp OfferingResponse, now, expires time.Time) {
	// Pre-encode both formats once, outside the shard lock. Every hit is
	// served as Cached=true, so the stored bytes carry the flag; the JSON
	// body keeps the trailing newline json.Encoder emits so cached and
	// freshly-encoded responses stay byte-identical.
	hit := resp
	hit.Cached = true
	jsonBody, err := json.Marshal(&hit)
	if err != nil {
		return // unencodable tables are not cacheable; the miss path reports it
	}
	jsonBody = append(jsonBody, '\n')
	wireBody := wire.AppendOfferingResponse(nil, &hit)

	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[cacheKey]cacheVal)
	}
	s.puts++
	if s.puts%sweepEvery == 0 {
		for k, v := range s.m {
			if now.After(v.expires) {
				delete(s.m, k)
				met.rescacheExpired.Inc()
				met.rescacheEntries.Dec()
			}
		}
	}
	_, exists := s.m[key]
	if !exists && c.maxPerShard > 0 && len(s.m) >= c.maxPerShard {
		s.evictOldestLocked()
	}
	s.m[key] = cacheVal{resp: resp, jsonBody: jsonBody, wireBody: wireBody, expires: expires}
	if !exists {
		met.rescacheEntries.Inc()
	}
}

// evictOldestLocked removes the entry closest to expiry — expired entries
// sort first, so garbage is always reclaimed before live data. The linear
// scan is fine at per-shard sizes (maxPerShard is a few hundred).
func (s *respShard) evictOldestLocked() {
	var (
		oldest cacheKey
		found  bool
		at     time.Time
	)
	for k, v := range s.m {
		if !found || v.expires.Before(at) {
			oldest, at, found = k, v.expires, true
		}
	}
	if found {
		delete(s.m, oldest)
		met.rescacheEvictions.Inc()
		met.rescacheEntries.Dec()
	}
}

// entries reports the total cached-entry count (tests and diagnostics).
func (c *respCache) entries() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// NewServer returns a server over the environment.
func NewServer(env *cknn.Env, opts ServerOptions) *Server {
	srv := &Server{
		env:    env,
		engine: cknn.Engine{Env: env},
		opts:   opts.withDefaults(),
	}
	if srv.opts.CacheMaxEntries > 0 {
		per := srv.opts.CacheMaxEntries / respCacheStripes
		if per < 1 {
			per = 1
		}
		srv.cache.maxPerShard = per
	}
	return srv
}

// withDeadline installs the per-request deadline on the request context so
// every handler (and everything it calls) observes one budget; the deadline
// propagates into the single-flight wait and any downstream work.
func (s *Server) withDeadline(h http.Handler) http.Handler {
	if s.opts.RequestTimeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// instrument wraps an API handler with its per-endpoint duration histogram
// and — when the server has a tracer — a server span that joins the
// caller's trace if the request carries X-Trace-Id/X-Span-Id headers. A nil
// tracer costs one histogram observation per request and nothing else.
func (s *Server) instrument(name string, hist *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer hist.Since(start)
		if s.opts.Tracer != nil {
			ctx := r.Context()
			if sc, ok := obs.ExtractHTTP(r.Header); ok {
				ctx = obs.ContextWith(ctx, sc)
			}
			ctx, span := s.opts.Tracer.StartSpan(ctx, name)
			defer span.End()
			r = r.WithContext(ctx)
		}
		fn(w, r)
	}
}

// Handler returns the HTTP routes of the EIS, including the observability
// surface: /metrics (Prometheus-style text exposition) and /debug/vars
// (JSON snapshot) over the process-wide default registry, which is where
// the cknn/roadnet/eis packages register their metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(APIVersion+"/chargers", s.instrument("eis.chargers", met.httpChargers, s.handleChargers))
	mux.HandleFunc(APIVersion+"/inventory", s.instrument("eis.inventory", met.httpInventory, s.handleInventory))
	mux.HandleFunc(APIVersion+"/weather", s.instrument("eis.weather", met.httpWeather, s.handleWeather))
	mux.HandleFunc(APIVersion+"/availability", s.instrument("eis.availability", met.httpAvailability, s.handleAvailability))
	mux.HandleFunc(APIVersion+"/traffic", s.instrument("eis.traffic", met.httpTraffic, s.handleTraffic))
	mux.HandleFunc(APIVersion+"/offering", s.instrument("eis.offering", met.httpOffering, s.handleOffering))
	mux.HandleFunc(APIVersion+"/offering/trip", s.instrument("eis.offering.trip", met.httpTrip, s.handleTripOffering))
	mux.HandleFunc(APIVersion+"/advice", s.instrument("eis.advice", met.httpAdvice, s.handleAdvice))
	mux.Handle("/metrics", obs.Default().Handler())
	mux.Handle("/debug/vars", obs.Default().VarsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = fmt.Fprintln(w, "ok") // client went away; nothing to do with the error
	})
	return s.withDeadline(mux)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("eis: %d %s", code, msg)
	}
	// Errors are always JSON, even on requests that negotiated binary:
	// failure bodies are cold and must stay curl-readable.
	writeJSONStatus(w, code, ErrorResponse{Error: msg})
}

// ctJSON is the canonical interchange format; wire.ContentType is the
// negotiated binary alternative for the hot-path payloads.
const ctJSON = "application/json"

// errEncodeBody is the fallback 500 body when marshalling a response fails —
// possible only for marshaler-bearing payloads, but the old streaming
// encoder turned it into a silently truncated 200.
var errEncodeBody = []byte(`{"error":"encoding response"}` + "\n")

// jsonBufs pools the JSON encode buffers so steady-state serving reuses one
// buffer per in-flight response instead of growing a fresh one per call.
var jsonBufs = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// maxPooledJSONBuf caps the capacity a buffer may keep when returned: one
// huge inventory response must not pin megabytes in the pool forever.
const maxPooledJSONBuf = 1 << 22

func getJSONBuf() *bytes.Buffer {
	b := jsonBufs.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putJSONBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledJSONBuf {
		jsonBufs.Put(b)
	}
}

// writeBody writes one fully-encoded response. Content-Length is known
// before the first byte hits the socket, so an encode failure can never
// truncate a 200 mid-body the way the per-call streaming encoder could.
func writeBody(w http.ResponseWriter, code int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	_, _ = w.Write(body) // client went away; nothing to do with the error
}

func writeJSONStatus(w http.ResponseWriter, code int, v interface{}) {
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		writeBody(w, http.StatusInternalServerError, ctJSON, errEncodeBody)
		return
	}
	writeBody(w, code, ctJSON, buf.Bytes())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	writeJSONStatus(w, http.StatusOK, v)
}

// wantsWire reports whether the request negotiated the binary response
// format.
func wantsWire(r *http.Request) bool { return wire.Accepts(r.Header.Get("Accept")) }

// respond writes v in the request's negotiated format: enc appends the
// binary message for payloads the wire codec covers, JSON stays the default
// (and the only format where enc is nil). The per-format histograms measure
// exactly the marshal share of serving latency.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, v interface{}, enc func([]byte) []byte) {
	if enc != nil && wantsWire(r) {
		buf := wire.GetBuffer()
		start := time.Now()
		buf.B = enc(buf.B)
		met.encodeWire.Since(start)
		met.respWire.Inc()
		writeBody(w, http.StatusOK, wire.ContentType, buf.B)
		wire.PutBuffer(buf)
		return
	}
	buf := getJSONBuf()
	start := time.Now()
	err := json.NewEncoder(buf).Encode(v)
	met.encodeJSON.Since(start)
	if err != nil {
		putJSONBuf(buf)
		writeBody(w, http.StatusInternalServerError, ctJSON, errEncodeBody)
		return
	}
	met.respJSON.Inc()
	writeBody(w, http.StatusOK, ctJSON, buf.Bytes())
	putJSONBuf(buf)
}

func parseFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("parameter %q is not a finite number", name)
	}
	return v, nil
}

func parseTime(r *http.Request, name string, def time.Time) (time.Time, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	t, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		return time.Time{}, fmt.Errorf("parameter %q is not RFC3339: %v", name, err)
	}
	return t, nil
}

// handleChargers returns the chargers within a radius of a location
// (the PlugShare-consolidation endpoint).
func (s *Server) handleChargers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	lat, err := parseFloat(r, "lat")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	lon, err := parseFloat(r, "lon")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := parseFloat(r, "radius_m")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := geo.Point{Lat: lat, Lon: lon}
	if !p.Valid() || radius < 0 {
		s.writeError(w, http.StatusBadRequest, "invalid location or radius")
		return
	}
	cs := s.env.Chargers.Within(p, radius)
	s.respond(w, r, cs, func(b []byte) []byte { return wire.AppendChargerRefs(b, cs) })
}

// handleInventory returns the server's complete charger inventory. For a
// sharded instance that is the owned partition; the fleet gateway caches it
// per shard so unreachable partitions degrade to ignorance-bound entries
// instead of disappearing from Offering Tables.
func (s *Server) handleInventory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	cs := s.env.Chargers.All()
	s.respond(w, r, cs, func(b []byte) []byte { return wire.AppendChargers(b, cs) })
}

// handleWeather returns the production forecast of a charger at a time
// (the OpenWeatherMap-consolidation endpoint).
func (s *Server) handleWeather(w http.ResponseWriter, r *http.Request) {
	c, at, ok := s.chargerAndTime(w, r)
	if !ok {
		return
	}
	iv := s.env.ProductionForecast(c, at, s.opts.Clock())
	resp := WeatherResponse{ChargerID: c.ID, At: at, ProductionKW: toWire(iv)}
	s.respond(w, r, &resp, func(b []byte) []byte { return wire.AppendWeather(b, &resp) })
}

// handleAvailability returns the availability estimate of a charger
// (the busy-timetable endpoint).
func (s *Server) handleAvailability(w http.ResponseWriter, r *http.Request) {
	c, at, ok := s.chargerAndTime(w, r)
	if !ok {
		return
	}
	iv := s.env.Avail.ForecastAvailability(c.ID, &c.Timetable, at, s.opts.Clock())
	resp := AvailabilityResponse{ChargerID: c.ID, At: at, Availability: toWire(iv)}
	s.respond(w, r, &resp, func(b []byte) []byte { return wire.AppendAvailability(b, &resp) })
}

func (s *Server) chargerAndTime(w http.ResponseWriter, r *http.Request) (c *charger.Charger, at time.Time, ok bool) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return nil, time.Time{}, false
	}
	idF, err := parseFloat(r, "charger")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return nil, time.Time{}, false
	}
	c, found := s.env.Chargers.ByID(int64(idF))
	if !found {
		s.writeError(w, http.StatusNotFound, "charger %d not found", int64(idF))
		return nil, time.Time{}, false
	}
	at, err = parseTime(r, "t", s.opts.Clock())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return nil, time.Time{}, false
	}
	return c, at, true
}

// handleTraffic returns the congestion band per road class (the GIS
// traffic endpoint).
func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	at, err := parseTime(r, "t", s.opts.Clock())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	now := s.opts.Clock()
	resp := TrafficResponse{At: at, Multiplier: make(map[string]IntervalJSON, 4)}
	for c := roadnet.RoadClass(0); c < 4; c++ {
		resp.Multiplier[c.String()] = toWire(s.env.Traffic.ForecastMultiplier(c, at, now))
	}
	writeJSON(w, resp)
}

// handleOffering is the Mode 2 endpoint: the server runs Algorithm 1 for
// the posted query, consulting (and feeding) its dynamic cache.
func (s *Server) handleOffering(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	const maxOfferingBody = 1 << 20
	body := http.MaxBytesReader(w, r.Body, maxOfferingBody)
	var req OfferingRequest
	if wire.IsWire(r.Header.Get("Content-Type")) {
		buf := wire.GetBuffer()
		err := buf.ReadLimit(body, maxOfferingBody)
		if err == nil {
			err = wire.DecodeOfferingRequest(buf.B, &req)
		}
		wire.PutBuffer(buf)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		met.reqWire.Inc()
	} else if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	p := geo.Point{Lat: req.Lat, Lon: req.Lon}
	if !p.Valid() {
		s.writeError(w, http.StatusBadRequest, "invalid location (%v, %v)", req.Lat, req.Lon)
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	if req.RadiusM <= 0 {
		req.RadiusM = 50000
	}
	if req.Weights == (WeightsJSON{}) {
		eq := cknn.EqualWeights()
		req.Weights = WeightsJSON{L: eq.L, A: eq.A, D: eq.D}
	}
	weights := cknn.Weights{L: req.Weights.L, A: req.Weights.A, D: req.Weights.D}
	if err := weights.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	now := req.Now
	if now.IsZero() {
		now = s.opts.Clock()
	}
	eta := req.ETA
	if eta.IsZero() {
		eta = now
	}

	key := s.cacheKeyFor(p, req)
	if v, ok := s.cache.get(key, now); ok {
		// Write-many: the table was encoded (both formats, Cached=true)
		// when it entered the cache; a hit costs one header write and one
		// body write, no marshalling.
		if wantsWire(r) {
			met.respWire.Inc()
			writeBody(w, http.StatusOK, wire.ContentType, v.wireBody)
		} else {
			met.respJSON.Inc()
			writeBody(w, http.StatusOK, ctJSON, v.jsonBody)
		}
		return
	}

	node := s.env.Graph.NearestNode(p)
	if node == roadnet.Invalid {
		s.writeError(w, http.StatusUnprocessableEntity, "location not on the road network")
		return
	}

	// Single-flight: concurrent cache misses for the same cell collapse to
	// one computation; followers wait for the leader's table (or their own
	// deadline) instead of stampeding the ranking engine.
	resp, shared, err := s.flights.do(r.Context(), key, func() OfferingResponse {
		s.computes.Add(1)
		q := cknn.Query{
			Anchor: p, AnchorNode: node, ReturnNode: node,
			Now: now, ETABase: eta,
			K: req.K, RadiusM: req.RadiusM, Weights: weights,
		}
		m := cknn.NewEcoCharge(s.env, cknn.EcoChargeOptions{RadiusM: req.RadiusM})
		m.SetWorkers(s.opts.Workers)
		table := m.Rank(q)
		out := OfferingResponse{GeneratedAt: now}
		for _, e := range table.Entries {
			out.Entries = append(out.Entries, wireEntry(e))
		}
		s.cache.put(key, out, now, now.Add(s.opts.CacheTTL))
		return out
	})
	if err != nil {
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.ShedRetryAfter))
		s.writeError(w, http.StatusServiceUnavailable, "offering computation did not finish in time: %v", err)
		return
	}
	resp.Cached = resp.Cached || shared
	s.respond(w, r, &resp, func(b []byte) []byte { return wire.AppendOfferingResponse(b, &resp) })
}

// flightGroup collapses concurrent computations of the same cache key into
// one: the first caller becomes the leader and computes, followers block on
// the leader's result or their own context, whichever ends first. The
// leader always runs to completion so its work lands in the cache even when
// every waiter gave up.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flight
}

type flight struct {
	done chan struct{}
	resp OfferingResponse
}

// do returns the response, whether it was shared from another caller's
// computation, and a context error when the wait was abandoned.
func (g *flightGroup) do(ctx context.Context, key cacheKey, fn func() OfferingResponse) (OfferingResponse, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[cacheKey]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		met.flightCoalesced.Inc()
		select {
		case <-f.done:
			return f.resp, true, nil
		case <-ctx.Done():
			return OfferingResponse{}, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()
	met.flightLeads.Inc()

	f.resp = fn()
	close(f.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return f.resp, false, nil
}

func (s *Server) cacheKeyFor(p geo.Point, req OfferingRequest) cacheKey {
	cell := s.opts.CacheCellM / geo.EarthRadius * 180 / math.Pi // degrees
	return cacheKey{
		cellLat: int64(math.Floor(p.Lat / cell)),
		cellLon: int64(math.Floor(p.Lon / cell)),
		k:       req.K,
		radiusM: int64(req.RadiusM),
		weights: req.Weights,
	}
}

// Package wire is the EcoCharge zero-copy data plane: the wire types the
// EIS and the fleet gateway exchange, plus a compact length-prefixed binary
// codec for the hot-path payloads (Offering Tables, the charger inventory,
// and the per-charger point lookups).
//
// JSON stays the canonical, default interchange format — every binary
// message decodes to exactly the struct its JSON twin decodes to, and the
// fuzzed round-trip suite pins that equivalence. The binary format exists
// for one reason: at fleet scale the encode/decode share of serving latency
// is first-order, and stdlib JSON pays reflection, per-field allocation,
// and base-10 float formatting on every request. The binary codec is
// reflection-free, uses fixed-width little-endian numerics and varint
// lengths, and both directions run alloc-free in steady state against
// pooled buffers.
//
// Negotiation is standard HTTP: a client that wants binary sends
// `Accept: application/x-ecocharge-wire` (and may POST a binary body with
// the matching Content-Type); the server answers binary only for payload
// types the codec covers and stamps the Content-Type, so a peer that never
// asks — or a server that predates the codec — degrades to JSON without
// any out-of-band coordination. Error responses are always JSON: they are
// cold, and keeping them textual keeps failures debuggable with curl.
//
// Framing: every message starts with the three-byte header
// {magic 0xEC, version 1, kind}; decoding verifies the header, the kind,
// and that the payload consumes the input exactly. Slices carry uvarint
// length prefixes; floats are IEEE-754 bits (NaN/Inf rejected on decode —
// JSON cannot represent them, so neither may the binary plane); times are
// wall seconds + nanoseconds + UTC offset, which reproduces the RFC 3339
// rendering byte-for-byte.
package wire

import (
	"io"
	"strings"
	"sync"
)

// ContentType is the negotiated media type of the binary format.
const ContentType = "application/x-ecocharge-wire"

// Header layout of every binary message.
const (
	magic   = 0xEC
	version = 1
)

// Message kinds (the third header byte).
const (
	kindOfferingRequest  = 1
	kindOfferingResponse = 2
	kindChargers         = 3
	kindWeather          = 4
	kindAvailability     = 5
)

// Accepts reports whether an Accept header asks for the binary format. Only
// an explicit token selects it — wildcards keep the JSON default, so plain
// browsers and curl never receive binary by accident.
func Accepts(accept string) bool {
	for accept != "" {
		var part string
		part, accept, _ = strings.Cut(accept, ",")
		part, _, _ = strings.Cut(part, ";") // drop q= and other params
		if strings.EqualFold(strings.TrimSpace(part), ContentType) {
			return true
		}
	}
	return false
}

// IsWire reports whether a Content-Type header names the binary format.
func IsWire(contentType string) bool {
	ct, _, _ := strings.Cut(contentType, ";")
	return strings.EqualFold(strings.TrimSpace(ct), ContentType)
}

// Buffer is a pooled byte buffer for encoding messages and reading response
// bodies without a fresh allocation per exchange. Get one with GetBuffer,
// use B (always append to B[:0] or via ReadLimit), and return it with
// PutBuffer when the bytes are no longer referenced.
type Buffer struct {
	B []byte
}

// maxPooledBuf caps the capacity a returned buffer may retain: one
// 32 MB inventory response must not pin 32 MB in the pool forever.
const maxPooledBuf = 1 << 22 // 4 MB

var bufPool = sync.Pool{
	New: func() interface{} { return &Buffer{B: make([]byte, 0, 4096)} },
}

// GetBuffer returns a pooled buffer with B reset to length zero.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer returns a buffer to the pool. The caller must not touch B (or
// any slice aliasing it) afterwards. Oversized buffers are dropped so the
// pool's steady-state footprint stays bounded.
func PutBuffer(b *Buffer) {
	if b == nil || cap(b.B) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// ReadLimit reads r into the buffer, reusing its capacity, stopping at EOF
// or after max+1 bytes — like io.ReadAll(io.LimitReader(r, max+1)), callers
// detect an oversized body with len(b.B) > max and keep their own policy
// for it (the client treats it as a terminal protocol violation, not a
// transport fault). It replaces the ReadAll-per-response pattern: a pooled
// buffer makes the read path allocation-free once warm, where ReadAll
// grows a fresh slice through O(log n) copies per call.
func (b *Buffer) ReadLimit(r io.Reader, max int64) error {
	b.B = b.B[:0]
	for int64(len(b.B)) <= max {
		if len(b.B) == cap(b.B) {
			b.B = append(b.B, 0)[:len(b.B)]
		}
		room := cap(b.B) - len(b.B)
		if over := int64(len(b.B)+room) - (max + 1); over > 0 {
			room -= int(over)
		}
		n, err := r.Read(b.B[len(b.B) : len(b.B)+room])
		b.B = b.B[:len(b.B)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

package cknn

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

// Engine evaluates Estimated Components and builds Offering Tables over an
// environment. All ranking methods share it so their scores differ only by
// candidate selection and caching policy, never by scoring rules.
type Engine struct {
	Env *Env
	// Workers bounds the filtering-phase worker pool: values above 1 split
	// per-charger EC evaluation across that many goroutines. 0 and 1 keep
	// the sequential path, which is the testing oracle — the parallel path
	// is proven equivalent to it by the differential suite.
	Workers int
}

// evaluate computes the Entry of one charger for the query, using the
// derouting maps for the D component. The boolean is false when the charger
// is unreachable within the maps' bound.
func (e *Engine) evaluate(c *charger.Charger, d DeroutingMaps, q Query) (Entry, bool) {
	travel, ok := d.TravelTo(c.Node)
	if !ok {
		return Entry{}, false
	}
	derout, ok := d.Cost(c.Node)
	if !ok {
		return Entry{}, false
	}
	eta := etaAt(q.ETABase, travel)
	var deg Degraded

	// L (Alg. 1 lines 5–6): forecast production (solar + optional wind)
	// capped by the charger's electrical rate, normalized by the
	// environment's maximum level. A failed weather fetch degrades L to
	// the ignorance bound instead of erroring.
	l, ok := e.Env.LForecast(c, eta, q.Now)
	if ok {
		l = capAbove(l, c.Rate.KW()).Normalize(e.Env.MaxLKW)
	} else {
		l = ignoranceBound()
		deg |= DegradedL
	}

	// A (lines 7–8): availability from the busy timetable at the ETA.
	a, ok := e.Env.AForecast(c, eta, q.Now)
	if !ok {
		a = ignoranceBound()
		deg |= DegradedA
	}

	// D (lines 9–10): normalized derouting cost. The expansion itself is
	// local (the road graph is in memory), so only the traffic band can
	// fail; the ETA keeps the graph-derived travel estimate either way.
	var dn interval.I
	if e.Env.DSourceOK(c.ID, q.Now) {
		dn = derout.Normalize(e.Env.MaxDeroutSec)
	} else {
		dn = ignoranceBound()
		deg |= DegradedD
	}

	comp := Components{L: l, A: a, D: dn, ETA: eta, DeroutSecM: derout.Mid(), Degraded: deg}
	countDegraded(deg)
	return Entry{Charger: c, SC: comp.SC(q.Weights), Comp: comp}, true
}

// capAbove limits an interval from above by cap (production cannot charge
// faster than the plug's rate).
func capAbove(x interval.I, cap float64) interval.I {
	if x.Min > cap {
		x.Min = cap
	}
	if x.Max > cap {
		x.Max = cap
	}
	return x
}

// rankPool runs the filtering and refinement phases over a candidate pool:
// chargers are evaluated with interval pruning (a candidate whose cheap
// optimistic bound cannot beat the current k-th pessimistic score skips the
// expensive forecasts), then ranked per eq. 6. With Workers > 1 the
// filtering phase fans out across a bounded pool; the output is identical
// either way because pruning only ever drops candidates that cannot enter
// the top-k and Rank orders entries under a total order (ties fall back to
// the charger ID).
func (e *Engine) rankPool(cands []*charger.Charger, d DeroutingMaps, q Query) []Entry {
	filterStart := time.Now()
	var entries []Entry
	if e.Workers > 1 && len(cands) >= minParallelCands {
		entries = e.evalPoolParallel(cands, d, q)
	} else {
		entries = e.evalPoolSeq(cands, d, q)
	}
	met.filterSeconds.Since(filterStart)
	refineStart := time.Now()
	out := Rank(entries, q.K)
	met.refineSeconds.Since(refineStart)
	return out
}

// minParallelCands is the pool size below which goroutine hand-off costs
// more than the sequential scan it would replace.
const minParallelCands = 16

// pruneBound is the cheap optimistic SC bound of a candidate, computed
// before any forecasting: L and A cannot exceed 1; D cannot be better than
// its lower bound. ok is false when the derouting cost is unknown (the
// candidate must then be evaluated to learn it is unreachable).
func (e *Engine) pruneBound(c *charger.Charger, d DeroutingMaps, q Query) (float64, bool) {
	dn, ok := d.Cost(c.Node)
	if !ok {
		return 0, false
	}
	if !e.Env.DSourceOK(c.ID, q.Now) {
		// Degraded D widens to [0,1], so its optimistic SC contribution is
		// the full weight: only the loose bound is sound here. FaultPolicy
		// purity guarantees the evaluation will see the same decision.
		return q.Weights.L + q.Weights.A + q.Weights.D, true
	}
	dNorm := dn.Normalize(e.Env.MaxDeroutSec)
	return q.Weights.L + q.Weights.A + (1-dNorm.Min)*q.Weights.D, true
}

// evalPoolSeq is the sequential filtering phase — the oracle the parallel
// path is differentially tested against.
func (e *Engine) evalPoolSeq(cands []*charger.Charger, d DeroutingMaps, q Query) []Entry {
	entries := make([]Entry, 0, len(cands))
	// kthMin tracks the k-th best pessimistic SC seen so far; used for the
	// filtering-phase prune.
	kthMin := math.Inf(-1)
	mins := newBottomK(q.K)
	for _, c := range cands {
		if upper, ok := e.pruneBound(c, d, q); ok && upper < kthMin {
			met.pruneRejected.Inc()
			continue // pruned: cannot enter the top-k
		}
		entry, ok := e.evaluate(c, d, q)
		if !ok {
			met.unreachable.Inc()
			continue
		}
		met.evaluated.Inc()
		entries = append(entries, entry)
		if mins.push(entry.SC.Min) {
			kthMin = mins.kth()
		}
	}
	return entries
}

// evalPoolParallel is the concurrent filtering phase: Workers goroutines
// pull candidates from a shared index and write results into per-index
// slots, which are then merged in candidate order (index-stable merge). The
// pruning bound is shared through an atomic: its value only ever rises, so
// a stale read merely evaluates a candidate the sequential pass would have
// skipped — membership below the top-k may differ between runs, the ranked
// top-k never does.
func (e *Engine) evalPoolParallel(cands []*charger.Charger, d DeroutingMaps, q Query) []Entry {
	results := make([]Entry, len(cands))
	keep := make([]bool, len(cands))

	// kthBits holds math.Float64bits of the k-th best pessimistic SC.
	var kthBits atomic.Uint64
	kthBits.Store(math.Float64bits(math.Inf(-1)))
	var mu sync.Mutex // guards mins
	mins := newBottomK(q.K)

	workers := e.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				c := cands[i]
				if upper, ok := e.pruneBound(c, d, q); ok &&
					upper < math.Float64frombits(kthBits.Load()) {
					met.pruneRejected.Inc()
					continue
				}
				entry, ok := e.evaluate(c, d, q)
				if !ok {
					met.unreachable.Inc()
					continue
				}
				met.evaluated.Inc()
				results[i] = entry
				keep[i] = true
				mu.Lock()
				if mins.push(entry.SC.Min) {
					kthBits.Store(math.Float64bits(mins.kth()))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	entries := make([]Entry, 0, len(cands))
	for i := range results {
		if keep[i] {
			entries = append(entries, results[i])
		}
	}
	return entries
}

// bottomK maintains the k largest values seen, exposing the smallest of
// them (the k-th best), with a simple insertion structure adequate for the
// small k of Offering Tables.
type bottomK struct {
	k    int
	vals []float64 // ascending, at most k entries, holding the k largest
}

func newBottomK(k int) *bottomK { return &bottomK{k: k} }

// push inserts v and reports whether the set already holds k values (i.e.
// kth() is meaningful).
func (b *bottomK) push(v float64) bool {
	if b.k <= 0 {
		return false
	}
	if len(b.vals) < b.k {
		b.vals = append(b.vals, v)
		sortInsert(b.vals)
		return len(b.vals) == b.k
	}
	if v > b.vals[0] {
		b.vals[0] = v
		sortInsert(b.vals)
	}
	return true
}

func (b *bottomK) kth() float64 {
	if len(b.vals) < b.k {
		return math.Inf(-1)
	}
	return b.vals[0]
}

// sortInsert restores ascending order after modifying the first element or
// appending; the slice is nearly sorted so one pass suffices.
func sortInsert(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TruthMaps price chargers under the actual (zero-uncertainty) traffic at
// query time. Experiments use them to score any method's picks against
// ground truth, which is how the SC% metric of the evaluation is defined.
type TruthMaps struct {
	fwd, ret map[roadnet.NodeID]float64
	base     float64
}

// TruthMaps computes the exhaustive truth expansions for the query.
func (e *Engine) TruthMaps(q Query) TruthMaps {
	q = q.normalized()
	w := e.Env.Traffic.TruthWeightFunc(q.ETABase)
	fwd := e.Env.Graph.DistancesWithin(q.AnchorNode, w, math.Inf(1))
	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	rev := e.Env.Graph.DistancesTo(ret, w, math.Inf(1))
	base := lookup(fwd, ret, 0)
	return TruthMaps{fwd: fwd, ret: rev, base: base}
}

// TruthComponents returns the ground-truth normalized objectives of
// charging at c for the query: the charging level l, the availability a,
// and the derouting complement 1−d, all in [0,1]. The boolean is false when
// the charger is unreachable.
func (e *Engine) TruthComponents(q Query, tm TruthMaps, c *charger.Charger) (l, a, dComp float64, ok bool) {
	q = q.normalized()
	f, okF := tm.fwd[c.Node]
	r, okR := tm.ret[c.Node]
	if !okF || !okR {
		return 0, 0, 0, false
	}
	derout := f + r - tm.base
	if derout < 0 {
		derout = 0
	}
	eta := q.ETABase.Add(secondsDur(f))
	prodKW := e.Env.ProductionTruth(c, eta)
	if rate := c.Rate.KW(); prodKW > rate {
		prodKW = rate
	}
	if e.Env.MaxLKW > 0 {
		l = clamp01(prodKW / e.Env.MaxLKW)
	}
	a = 1 - e.Env.Avail.TruthBusy(c.ID, &c.Timetable, eta)
	dComp = 1 - clamp01(derout/e.Env.MaxDeroutSec)
	return l, a, dComp, true
}

// TruthSC returns the ground-truth Sustainability Score of charging at c
// for the query, under the query's weights. The boolean is false when the
// charger is unreachable.
func (e *Engine) TruthSC(q Query, tm TruthMaps, c *charger.Charger) (float64, bool) {
	q = q.normalized()
	l, a, dComp, ok := e.TruthComponents(q, tm, c)
	if !ok {
		return 0, false
	}
	return l*q.Weights.L + a*q.Weights.A + dComp*q.Weights.D, true
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

package fault

import (
	"time"

	"ecocharge/internal/cknn"
)

// DefaultBucket is the freshness granularity of source decisions: fetches
// issued within the same bucket observe the same outage realization, which
// models real feed outages (a weather API that is down stays down for
// minutes, not for one call) and keeps every query of a trip segment
// consistent.
const DefaultBucket = 5 * time.Minute

// SourcePolicy adapts an Injector to cknn.FaultPolicy: it fails component
// fetches deterministically per (component, charger, time bucket). It holds
// the purity contract the engine relies on — FetchOK is a pure function of
// its arguments between Advance calls on the injector — so prune bounds,
// evaluations, and the parallel filtering phase all see one consistent
// world.
type SourcePolicy struct {
	inj *Injector
	// bucket quantizes issue times; zero selects DefaultBucket.
	bucket time.Duration
}

// Sources wraps the injector as a component-fetch policy with the default
// freshness bucket.
func Sources(inj *Injector) *SourcePolicy { return SourcesBucketed(inj, DefaultBucket) }

// SourcesBucketed wraps the injector with an explicit freshness bucket.
func SourcesBucketed(inj *Injector, bucket time.Duration) *SourcePolicy {
	if bucket <= 0 {
		bucket = DefaultBucket
	}
	return &SourcePolicy{inj: inj, bucket: bucket}
}

// FetchOK implements cknn.FaultPolicy. Stale data is as useless as no data
// for an Estimated Component — the forecast horizon starts at the issue
// time — so both failure modes degrade the fetch.
func (p *SourcePolicy) FetchOK(comp cknn.Component, chargerID int64, issued time.Time) bool {
	d := p.inj.Decide(saltSource, uint64(comp), uint64(chargerID), p.bucketOf(issued))
	return !d.Degraded()
}

// bucketOf quantizes the issue time to the policy's freshness bucket. The
// logical timestamp comes from the query, never from the wall clock.
func (p *SourcePolicy) bucketOf(issued time.Time) uint64 {
	return uint64(issued.Unix() / int64(p.bucket/time.Second))
}

// saltSource namespaces component-fetch decisions away from transport
// decisions sharing the same injector.
const saltSource uint64 = 0x50facade

// Custom world: bring your own road network and charger inventory through
// the CSV codecs instead of the built-in generators — the workflow of an
// operator feeding EcoCharge an OpenStreetMap extract and a PlugShare
// export (paper §IV.B). The example writes a hand-crafted six-junction
// town to CSV, loads it back, snapshots the whole world to a zip, restores
// it, and ranks chargers in the restored world.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/experiment"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/snapshot"
	"ecocharge/internal/trajectory"
)

// A six-node town: a main street (0-1-2) with a bypass (3-4-5).
const graphCSV = `id,lat,lon
0,50.9400,6.9500
1,50.9400,6.9650
2,50.9400,6.9800
3,50.9300,6.9500
4,50.9300,6.9650
5,50.9300,6.9800

from,to,length_m,class
0,1,1100,1
1,0,1100,1
1,2,1100,1
2,1,1100,1
0,3,1200,0
3,0,1200,0
2,5,1200,0
5,2,1200,0
3,4,1150,2
4,3,1150,2
4,5,1150,2
5,4,1150,2
`

const chargersCSV = `id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs
1,50.9400,6.9650,1,22.0,30.0,0.0,2
2,50.9300,6.9650,4,50.0,80.0,20.0,4
3,50.9400,6.9800,2,11.0,0.0,0.0,1
`

func main() {
	// 1. Load the operator's CSVs.
	graph, err := roadnet.ReadCSV(strings.NewReader(graphCSV))
	if err != nil {
		log.Fatal(err)
	}
	rows, err := charger.ReadCSV(strings.NewReader(chargersCSV))
	if err != nil {
		log.Fatal(err)
	}
	avail := ec.NewAvailabilityModel(1)
	for i := range rows {
		rows[i].Timetable = avail.GenerateTimetable(rows[i].ID)
	}
	set, err := charger.NewSet(rows)
	if err != nil {
		log.Fatal(err)
	}
	env, err := cknn.NewEnv(graph, set,
		ec.NewSolarModel(2), avail, ec.NewTrafficModel(3),
		cknn.EnvConfig{RadiusM: 5000, Wind: ec.NewWindModel(4)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded custom world: %d nodes, %d edges, %d chargers\n",
		graph.NumNodes(), graph.NumEdges(), set.Len())

	// 2. One trip across town and its Offering Table.
	depart := time.Date(2024, 6, 18, 10, 0, 0, 0, time.UTC)
	path, ok := graph.ShortestPath(0, 5, roadnet.DistanceWeight)
	if !ok {
		log.Fatal("town disconnected")
	}
	trip := trajectory.Trip{ID: 1, Path: path, Depart: depart}
	method := cknn.NewEcoCharge(env, cknn.EcoChargeOptions{RadiusM: 5000})
	results := cknn.RunTrip(env, method, trip, cknn.TripOptions{K: 3, SegmentLenM: 2000, RadiusM: 5000})
	fmt.Println("\nOffering Table at the first segment:")
	for i, e := range results[0].Table.Entries {
		fmt.Printf("  %d. charger %d (%s, %.0f kW solar + %.0f kW wind)  SC=%s\n",
			i+1, e.Charger.ID, e.Charger.Rate, e.Charger.PanelKW, e.Charger.WindKW, e.SC)
	}

	// 3. Snapshot the entire world and restore it elsewhere.
	sc := &experiment.Scenario{
		Name: "CustomTown", Graph: graph, Env: env,
		Trips: []trajectory.Trip{trip}, Scale: 1, Seed: 2, Start: depart,
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, sc); err != nil {
		log.Fatal(err)
	}
	restored, err := snapshot.LoadFromBytes(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot round trip: %d bytes, world %q with %d chargers restored\n",
		buf.Len(), restored.Name, restored.Env.Chargers.Len())

	// The restored world ranks identically.
	again := cknn.NewEcoCharge(restored.Env, cknn.EcoChargeOptions{RadiusM: 5000})
	table := cknn.RunTrip(restored.Env, again, restored.Trips[0],
		cknn.TripOptions{K: 3, SegmentLenM: 2000, RadiusM: 5000})[0].Table
	fmt.Print("restored ranking: ")
	for i, id := range table.IDs() {
		if i > 0 {
			fmt.Print(" > ")
		}
		fmt.Printf("charger %d", id)
	}
	fmt.Println()
}

package fleet

import (
	"fmt"
	"sort"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/eis"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
)

// This file is the k-way Offering-Table merge. It reimplements, on wire
// entries, exactly the two orders cknn.Rank uses — selection by the SC_max
// chain, emission by the SC-midpoint chain — so that at zero faults the
// merged table over disjoint shard tables is byte-identical to a single EIS
// over the whole inventory (property 2 of the package doc), and under shard
// loss the table still satisfies tabletest's total order.

// scMaxLess is cknn's maxKey chain on wire entries: SC_max descending, then
// SC_min descending, then charger ID ascending.
func scMaxLess(a, b eis.OfferingEntry) bool {
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if a.SC.Max != b.SC.Max {
		return a.SC.Max > b.SC.Max
	}
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if a.SC.Min != b.SC.Min {
		return a.SC.Min > b.SC.Min
	}
	return a.ChargerID < b.ChargerID
}

// scMidLess is cknn's midKey chain on wire entries: SC midpoint descending,
// then SC_max descending, then SC_min descending, then charger ID ascending.
func scMidLess(a, b eis.OfferingEntry) bool {
	am := (a.SC.Min + a.SC.Max) / 2
	bm := (b.SC.Min + b.SC.Max) / 2
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if am != bm {
		return am > bm
	}
	return scMaxLess(a, b)
}

// mergeEntries selects the top k of the pooled per-shard entries under the
// SC_max chain and emits them in the SC-midpoint chain. Shard partitions
// are disjoint, but a stale inventory after a repartition could collide a
// synthesized entry with a live one; the live entry (no shard bit) wins.
func mergeEntries(pool []eis.OfferingEntry, k int) []eis.OfferingEntry {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	byID := make(map[int64]int, len(pool))
	deduped := pool[:0:0]
	for _, e := range pool {
		if j, dup := byID[e.ChargerID]; dup {
			if deduped[j].Degraded&uint8(cknn.DegradedShard) != 0 && e.Degraded&uint8(cknn.DegradedShard) == 0 {
				deduped[j] = e
			}
			continue
		}
		byID[e.ChargerID] = len(deduped)
		deduped = append(deduped, e)
	}
	sort.Slice(deduped, func(i, j int) bool { return scMaxLess(deduped[i], deduped[j]) })
	if k < len(deduped) {
		deduped = deduped[:k]
	}
	sort.Slice(deduped, func(i, j int) bool { return scMidLess(deduped[i], deduped[j]) })
	return deduped
}

// ignoranceWire is the wire form of the [0,1] ignorance bound.
func ignoranceWire() eis.IntervalJSON { return eis.IntervalJSON{Min: 0, Max: 1} }

// synthEntry builds the entry the gateway offers for a charger whose shard
// did not answer: every component at the ignorance bound, SC through the
// real scoring path, the full DegradedAll mask, and a zero ETA (the gateway
// holds no road graph, so "unknown" is the honest value).
func synthEntry(c charger.Charger, w cknn.Weights) eis.OfferingEntry {
	ig := interval.New(0, 1)
	sc := cknn.Components{L: ig, A: ig, D: ig}.SC(w)
	return eis.OfferingEntry{
		ChargerID: c.ID,
		Lat:       c.P.Lat,
		Lon:       c.P.Lon,
		RateKW:    c.Rate.KW(),
		SC:        eis.IntervalJSON{Min: sc.Min, Max: sc.Max},
		L:         ignoranceWire(),
		A:         ignoranceWire(),
		D:         ignoranceWire(),
		Degraded:  uint8(cknn.DegradedAll),
	}
}

// synthWithin synthesizes ignorance-bound entries for the inventory
// chargers within the query radius, using the same predicate as the shards'
// spatial index (geodesic distance, inclusive bound).
func synthWithin(inv []charger.Charger, p geo.Point, radiusM float64, w cknn.Weights) []eis.OfferingEntry {
	var out []eis.OfferingEntry
	for _, c := range inv {
		if geo.Distance(p, c.P) <= radiusM {
			out = append(out, synthEntry(c, w))
		}
	}
	return out
}

// mergeOffering combines the live shard tables (ordered by shard index) and
// the synthesized entries of the dead shards into one response. Cached is
// the conjunction of the live flags — the merged table is "cached" only if
// every contributing shard served from its cache; GeneratedAt comes from
// the lowest-index live shard (all shards agree when the request pins Now).
func mergeOffering(live []eis.OfferingResponse, synth []eis.OfferingEntry, k int) eis.OfferingResponse {
	out := eis.OfferingResponse{Cached: len(live) > 0}
	var pool []eis.OfferingEntry
	for i, t := range live {
		if i == 0 {
			out.GeneratedAt = t.GeneratedAt
		}
		out.Cached = out.Cached && t.Cached
		pool = append(pool, t.Entries...)
	}
	pool = append(pool, synth...)
	out.Entries = mergeEntries(pool, k)
	return out
}

// mergeTrips combines per-shard trip evaluations. All shards share the road
// graph, so the segment skeletons (index, anchor, ETA, length) must agree;
// a mismatch means a shard answered for a different trip and is a merge
// error, not something to paper over. synthAt, when non-nil, supplies the
// dead shards' entries for a segment anchor. SplitPoints are recomputed
// from the merged tables with the server's own change-point rule.
func mergeTrips(live []eis.TripOfferingResponse, synthAt func(anchor geo.Point) []eis.OfferingEntry, k int) (eis.TripOfferingResponse, error) {
	if len(live) == 0 {
		return eis.TripOfferingResponse{}, fmt.Errorf("fleet: no live shard response to merge")
	}
	base := live[0]
	for _, r := range live[1:] {
		if len(r.Segments) != len(base.Segments) {
			return eis.TripOfferingResponse{}, fmt.Errorf("fleet: shard trip skeletons disagree: %d vs %d segments", len(base.Segments), len(r.Segments))
		}
	}
	out := eis.TripOfferingResponse{TripLengthM: base.TripLengthM}
	var prev []int64
	for si := range base.Segments {
		bs := base.Segments[si]
		seg := eis.SegmentOffering{
			SegmentIndex: bs.SegmentIndex,
			Anchor:       bs.Anchor,
			ETA:          bs.ETA,
			LengthM:      bs.LengthM,
			Adapted:      true,
		}
		var pool []eis.OfferingEntry
		for _, r := range live {
			s := r.Segments[si]
			if s.SegmentIndex != bs.SegmentIndex {
				return eis.TripOfferingResponse{}, fmt.Errorf("fleet: segment %d: shard skeletons disagree on index (%d vs %d)", si, bs.SegmentIndex, s.SegmentIndex)
			}
			seg.Adapted = seg.Adapted && s.Adapted
			pool = append(pool, s.Entries...)
		}
		if synthAt != nil {
			pool = append(pool, synthAt(geo.Point{Lat: bs.Anchor.Lat, Lon: bs.Anchor.Lon})...)
		}
		seg.Entries = mergeEntries(pool, k)
		ids := entryIDs(seg.Entries)
		if len(out.Segments) == 0 || !sameIDs(prev, ids) {
			out.SplitPoints = append(out.SplitPoints, seg.SegmentIndex)
			prev = ids
		}
		out.Segments = append(out.Segments, seg)
	}
	return out, nil
}

func entryIDs(es []eis.OfferingEntry) []int64 {
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e.ChargerID
	}
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeChargers pools per-shard radius results (plus dead-shard inventory
// matches) into the single-EIS order: geodesic distance ascending, ties by
// charger ID.
func mergeChargers(lists [][]charger.Charger, p geo.Point) []charger.Charger {
	out := make([]charger.Charger, 0)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := geo.Distance(p, out[i].P), geo.Distance(p, out[j].P)
		//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
		if di != dj {
			return di < dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

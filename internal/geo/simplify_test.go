package geo

import (
	"math/rand"
	"testing"
)

func TestSimplifyStraightLineCollapses(t *testing.T) {
	// 50 collinear points reduce to the endpoints.
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{Lat: 53.0, Lon: 8.0 + float64(i)*0.001}
	}
	out := Simplify(pts, 10)
	if len(out) != 2 {
		t.Fatalf("straight line simplified to %d points", len(out))
	}
	if out[0] != pts[0] || out[1] != pts[len(pts)-1] {
		t.Fatal("endpoints not preserved")
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	// An L-shaped path must keep the corner.
	var pts []Point
	for i := 0; i <= 20; i++ {
		pts = append(pts, Point{Lat: 53.0, Lon: 8.0 + float64(i)*0.001})
	}
	for i := 1; i <= 20; i++ {
		pts = append(pts, Point{Lat: 53.0 + float64(i)*0.001, Lon: 8.02})
	}
	out := Simplify(pts, 20)
	if len(out) != 3 {
		t.Fatalf("L-shape simplified to %d points, want 3", len(out))
	}
	corner := Point{Lat: 53.0, Lon: 8.02}
	if Distance(out[1], corner) > 30 {
		t.Errorf("corner lost: middle point %v", out[1])
	}
}

func TestSimplifyErrorBound(t *testing.T) {
	// Every original point stays within tolerance of the simplified line.
	r := rand.New(rand.NewSource(7))
	pts := make([]Point, 200)
	lat, lon := 53.0, 8.0
	for i := range pts {
		lat += (r.Float64() - 0.45) * 0.0005
		lon += r.Float64() * 0.0008
		pts[i] = Point{Lat: lat, Lon: lon}
	}
	const tol = 50.0
	out := Simplify(pts, tol)
	if len(out) >= len(pts) {
		t.Fatalf("no reduction: %d -> %d", len(pts), len(out))
	}
	// Check the guarantee against each simplified segment.
	for _, p := range pts {
		best := 1e18
		for i := 1; i < len(out); i++ {
			d, _ := PointSegmentDistance(p, out[i-1], out[i])
			if d < best {
				best = d
			}
		}
		if best > tol+1 {
			t.Fatalf("point %v is %.1f m from the simplified line (tol %v)", p, best, tol)
		}
	}
}

func TestSimplifyDegenerate(t *testing.T) {
	if got := Simplify(nil, 10); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
	one := []Point{{Lat: 53, Lon: 8}}
	if got := Simplify(one, 10); len(got) != 1 {
		t.Errorf("single point: %v", got)
	}
	two := []Point{{Lat: 53, Lon: 8}, {Lat: 53.1, Lon: 8.1}}
	if got := Simplify(two, 10); len(got) != 2 {
		t.Errorf("two points: %v", got)
	}
	// Zero tolerance keeps everything.
	three := []Point{{Lat: 53, Lon: 8}, {Lat: 53.1, Lon: 8.2}, {Lat: 53.2, Lon: 8.1}}
	if got := Simplify(three, 0); len(got) != 3 {
		t.Errorf("zero tolerance dropped points: %v", got)
	}
	// Simplify must not alias its input.
	out := Simplify(three, 1000)
	out[0].Lat = -1
	if three[0].Lat == -1 {
		t.Error("Simplify aliased its input slice")
	}
}

package roadnet

// Differential suite for the bucket-CH many-to-many index: every distance a
// CHBuckets sweep reports must be bit-identical to the pairwise
// ContractionHierarchy.Query over the same hierarchy. Both sides settle the
// same upward search spaces and add the same meeting-node operand pairs, so
// this is an equality test, not a tolerance test.

import (
	"math"
	"math/rand"
	"testing"
)

// sameFloat compares bitwise but lets any +Inf representation match.
func sameFloat(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestCHBucketsMatchPairwiseQuery(t *testing.T) {
	for gname, g := range diffGraphs() {
		for tname, cw := range diffTables() {
			ch := BuildCH(g, cw.Func())
			rng := rand.New(rand.NewSource(23))
			n := g.NumNodes()

			targets := make([]NodeID, 0, 18)
			for i := 0; i < 14; i++ {
				targets = append(targets, NodeID(rng.Intn(n)))
			}
			// Duplicates and invalid IDs get slots too: dup slots must agree
			// with each other, invalid slots must stay +Inf.
			targets = append(targets, targets[0], -2, NodeID(n), NodeID(n-1))

			tb := ch.TargetBuckets(targets)
			sb := ch.SourceBuckets(targets)
			var fwd, rev []float64
			for trial := 0; trial < 8; trial++ {
				origin := NodeID(rng.Intn(n))
				fwd = tb.DistancesFrom(origin, fwd)
				rev = sb.DistancesTo(origin, rev)
				for i, tgt := range targets {
					if !g.validID(tgt) {
						if !math.IsInf(fwd[i], 1) || !math.IsInf(rev[i], 1) {
							t.Fatalf("%s/%s: invalid target slot %d not +Inf", gname, tname, i)
						}
						continue
					}
					if want := ch.Query(origin, tgt); !sameFloat(fwd[i], want) {
						t.Fatalf("%s/%s: DistancesFrom(%d)[%d]=%v, Query(%d,%d)=%v",
							gname, tname, origin, i, fwd[i], origin, tgt, want)
					}
					if want := ch.Query(tgt, origin); !sameFloat(rev[i], want) {
						t.Fatalf("%s/%s: DistancesTo(%d)[%d]=%v, Query(%d,%d)=%v",
							gname, tname, origin, i, rev[i], tgt, origin, want)
					}
				}
			}
		}
	}
}

func TestCHBucketsInvalidOrigin(t *testing.T) {
	g := tinyGraph()
	ch := BuildCH(g, DistanceWeight)
	tb := ch.TargetBuckets([]NodeID{0, 4})
	for _, origin := range []NodeID{-1, NodeID(g.NumNodes()), Invalid} {
		out := tb.DistancesFrom(origin, nil)
		for i, d := range out {
			if !math.IsInf(d, 1) {
				t.Fatalf("invalid origin %d: slot %d = %v, want +Inf", origin, i, d)
			}
		}
	}
}

// TestCHBucketsOutReuse pins the allocation contract of the out slice: a
// slice with capacity is reused in place, anything smaller is replaced.
func TestCHBucketsOutReuse(t *testing.T) {
	g := tinyGraph()
	ch := BuildCH(g, DistanceWeight)
	targets := []NodeID{1, 4, 5}
	tb := ch.TargetBuckets(targets)

	big := make([]float64, 0, 8)
	out := tb.DistancesFrom(0, big)
	if len(out) != len(targets) || &out[0] != &big[:1][0] {
		t.Fatal("out slice with capacity was not reused in place")
	}
	small := make([]float64, 1)
	out = tb.DistancesFrom(0, small)
	if len(out) != len(targets) {
		t.Fatalf("undersized out: len %d, want %d", len(out), len(targets))
	}
}

func TestCHBucketsWrongDirectionPanics(t *testing.T) {
	g := tinyGraph()
	ch := BuildCH(g, DistanceWeight)
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	tb := ch.TargetBuckets([]NodeID{0})
	assertPanics("DistancesTo on TargetBuckets", func() { tb.DistancesTo(0, nil) })
	sb := ch.SourceBuckets([]NodeID{0})
	assertPanics("DistancesFrom on SourceBuckets", func() { sb.DistancesFrom(0, nil) })
}

// TestCHBucketsSweepZeroAlloc: with buckets prebuilt and the out slice
// supplied, the per-anchor sweep must not allocate.
func TestCHBucketsSweepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	g := smallUrban(3)
	ch := BuildCH(g, TimeClassWeights().Func())
	rng := rand.New(rand.NewSource(5))
	targets := make([]NodeID, 40)
	for i := range targets {
		targets[i] = NodeID(rng.Intn(g.NumNodes()))
	}
	tb := ch.TargetBuckets(targets)
	out := make([]float64, len(targets))
	src := NodeID(g.NumNodes() / 3)
	for i := 0; i < 4; i++ {
		out = tb.DistancesFrom(src, out)
	}
	allocs := testing.AllocsPerRun(50, func() {
		out = tb.DistancesFrom(src, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state bucket sweep allocates %.1f allocs/op, want 0", allocs)
	}
}

package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/eis"
	"ecocharge/internal/wire"
)

// member is the gateway's view of one shard: its addresses, a circuit
// breaker fed by both active probes and passive request outcomes, the
// latest probe verdict, and the shard's charger inventory (pulled on probe
// success, retained through outages so the merge can synthesize
// ignorance-bound entries for a dead shard's chargers).
//
// Health semantics: the breaker is the fail-fast gate for API traffic. It
// counts consecutive faults from any source — probe failures keep it
// current through idle blackouts, passive request failures catch the
// asymmetric partition whose probes lie healthy — while only real API
// successes close it (a probe success never does, so a lying probe cannot
// mask a dead data path). Under the inverse asymmetry (probes dead, data
// path fine) steady traffic keeps resetting the consecutive-fault count, so
// the shard stays closed; an idle shard opens conservatively and the
// half-open trial request self-corrects at the first real call.
type member struct {
	index   int
	baseURL string
	replica string
	host    string
	breaker *eis.Breaker

	// probeOK is the latest active-probe verdict. It never gates traffic by
	// itself; it removes the hedge delay (a shard that just failed its probe
	// is hedged immediately) and feeds the status surface.
	probeOK atomic.Bool

	// inventory is the shard's charger partition, pulled on probe success.
	// Nil until the first successful pull.
	inventory atomic.Pointer[[]charger.Charger]
}

func newMember(index int, s Shard, threshold int, cooldown time.Duration, clock func() time.Time) (*member, error) {
	u, err := url.Parse(s.URL)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("fleet: shard %d URL %q: not an absolute URL", index, s.URL)
	}
	m := &member{
		index:   index,
		baseURL: s.URL,
		replica: s.Replica,
		host:    u.Host,
		breaker: eis.NewBreaker(threshold, cooldown, clock),
	}
	m.probeOK.Store(true) // optimistic until the first probe says otherwise
	return m, nil
}

// chargers returns the last pulled inventory, or nil when none succeeded
// yet.
func (m *member) chargers() []charger.Charger {
	if p := m.inventory.Load(); p != nil {
		return *p
	}
	return nil
}

// probeTimeout bounds one health probe or inventory pull; probes must stay
// much cheaper than the per-shard request deadline.
const probeTimeout = 2 * time.Second

// probe runs one active health check against the member and refreshes its
// inventory when needed (first success, or first success after a failure —
// a restarted shard may own a different partition). Probe failures count
// against the breaker; probe successes only update probeOK.
func (g *Gateway) probe(ctx context.Context, m *member) {
	met.probes.Inc()
	ok := g.probeOnce(ctx, m.baseURL)
	if !ok && m.replica != "" {
		// A live replica keeps the shard probe-healthy: requests will hedge
		// to it immediately.
		ok = g.probeOnce(ctx, m.replica)
	}
	wasOK := m.probeOK.Swap(ok)
	if !ok {
		met.probeFailures.Inc()
		m.breaker.OnFailure()
		return
	}
	if m.inventory.Load() == nil || !wasOK {
		g.pullInventory(ctx, m)
	}
}

func (g *Gateway) probeOnce(ctx context.Context, base string) bool {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.opts.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// pullInventory fetches the member's charger partition. A failed pull is
// not a health event — the next probe retries it.
func (g *Gateway) pullInventory(ctx context.Context, m *member) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.baseURL+eis.APIVersion+"/inventory", nil)
	if err != nil {
		return
	}
	if accept := g.shardAccept(); accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := g.opts.HTTPClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	// Pooled read: inventory pulls are the gateway's largest payloads, and
	// one reusable buffer replaces a ReadAll regrowth per probe cycle. The
	// decoded inventory is a fresh slice, so releasing the buffer is safe.
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	if err := buf.ReadLimit(resp.Body, maxShardResponseBytes); err != nil ||
		resp.StatusCode != http.StatusOK || int64(len(buf.B)) > maxShardResponseBytes {
		return
	}
	var inv []charger.Charger
	if wire.IsWire(resp.Header.Get("Content-Type")) {
		decoded, err := wire.DecodeChargers(buf.B, nil)
		if err != nil {
			return
		}
		inv = decoded
	} else if err := json.Unmarshal(buf.B, &inv); err != nil {
		return
	}
	m.inventory.Store(&inv)
	met.inventoryPulls.Inc()
}

// ProbeAll runs one synchronous probe round over every member and updates
// the unhealthy gauge. Run calls it periodically; tests call it directly to
// step membership deterministically.
func (g *Gateway) ProbeAll(ctx context.Context) {
	for _, m := range g.members {
		g.probe(ctx, m)
	}
	unhealthy := int64(0)
	for _, m := range g.members {
		if !m.probeOK.Load() || m.breaker.Open() {
			unhealthy++
		}
	}
	met.shardsUnhealthy.Set(unhealthy)
}

// Run probes the fleet until the context is cancelled: one immediate round,
// then one every ProbeInterval. It blocks; start it on its own goroutine.
func (g *Gateway) Run(ctx context.Context) {
	g.ProbeAll(ctx)
	ticker := time.NewTicker(g.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.ProbeAll(ctx)
		}
	}
}

// ShardStatus is one row of the gateway's status surface.
type ShardStatus struct {
	Index     int    `json:"index"`
	URL       string `json:"url"`
	Replica   string `json:"replica,omitempty"`
	ProbeOK   bool   `json:"probe_ok"`
	Breaker   string `json:"breaker"`
	Inventory int    `json:"inventory"` // chargers in the cached partition; -1 = never pulled
}

// Status reports the fleet membership view.
func (g *Gateway) Status() []ShardStatus {
	out := make([]ShardStatus, len(g.members))
	for i, m := range g.members {
		n := -1
		if inv := m.inventory.Load(); inv != nil {
			n = len(*inv)
		}
		out[i] = ShardStatus{
			Index:     m.index,
			URL:       m.baseURL,
			Replica:   m.replica,
			ProbeOK:   m.probeOK.Load(),
			Breaker:   m.breaker.State(),
			Inventory: n,
		}
	}
	return out
}

package cknn

import (
	"sync"
	"time"

	"ecocharge/internal/charger"
)

// LoadTracker implements the paper's future-work extension (§VII):
// "investigate the balance of the produced traffic to chargers by the
// suggested Offering Tables, and monitor the congestion to redirect
// drivers to alternative EV charging stations."
//
// Every recommendation a driver commits to registers an expected arrival;
// the tracker then reports the demand EcoCharge itself has induced at each
// charger, and the Balanced method folds that into the availability
// component so later drivers are redirected before a queue forms.
//
// LoadTracker is safe for concurrent use: one tracker is shared by all
// vehicles of a fleet.
type LoadTracker struct {
	// Window is how long an expected arrival occupies a plug for demand
	// accounting (approximate charging session length). 0 selects 45 min.
	Window time.Duration

	mu          sync.Mutex
	plugs       map[int64]int
	commitments map[int64][]time.Time // charger -> expected arrivals
}

// NewLoadTracker returns a tracker over the inventory's plug counts.
func NewLoadTracker(set *charger.Set) *LoadTracker {
	lt := &LoadTracker{
		Window:      45 * time.Minute,
		plugs:       make(map[int64]int, set.Len()),
		commitments: make(map[int64][]time.Time),
	}
	for _, c := range set.All() {
		plugs := c.Plugs
		if plugs < 1 {
			plugs = 1
		}
		lt.plugs[c.ID] = plugs
	}
	return lt
}

func (lt *LoadTracker) window() time.Duration {
	if lt.Window <= 0 {
		return 45 * time.Minute
	}
	return lt.Window
}

// Commit registers a driver heading to the charger with the given ETA.
func (lt *LoadTracker) Commit(chargerID int64, eta time.Time) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.commitments[chargerID] = append(lt.commitments[chargerID], eta)
}

// Cancel removes one commitment with the given ETA (driver changed plans).
// Unknown commitments are ignored.
func (lt *LoadTracker) Cancel(chargerID int64, eta time.Time) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	cs := lt.commitments[chargerID]
	for i, t := range cs {
		if t.Equal(eta) {
			lt.commitments[chargerID] = append(cs[:i], cs[i+1:]...)
			return
		}
	}
}

// expire drops commitments whose occupancy window has passed. Callers hold
// the lock.
func (lt *LoadTracker) expire(now time.Time) {
	w := lt.window()
	for id, cs := range lt.commitments {
		kept := cs[:0]
		for _, t := range cs {
			if t.Add(w).After(now) {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			delete(lt.commitments, id)
		} else {
			lt.commitments[id] = kept
		}
	}
}

// InducedBusy reports the fraction of the charger's plugs already claimed
// by commitments whose occupancy overlaps time at, clamped to [0, 1].
func (lt *LoadTracker) InducedBusy(chargerID int64, at time.Time) float64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.expire(at)
	cs := lt.commitments[chargerID]
	if len(cs) == 0 {
		return 0
	}
	w := lt.window()
	overlapping := 0
	for _, t := range cs {
		if !t.After(at.Add(w)) && t.Add(w).After(at) {
			overlapping++
		}
	}
	plugs := lt.plugs[chargerID]
	if plugs < 1 {
		plugs = 1
	}
	v := float64(overlapping) / float64(plugs)
	if v > 1 {
		v = 1
	}
	return v
}

// Commitments reports the live commitment count per charger (diagnostics).
func (lt *LoadTracker) Commitments(now time.Time) map[int64]int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.expire(now)
	out := make(map[int64]int, len(lt.commitments))
	for id, cs := range lt.commitments {
		out[id] = len(cs)
	}
	return out
}

// Balanced wraps any ranking method with induced-demand redirection: after
// the inner method produces its table, every entry's availability is
// reduced by the demand already committed at its charger, scores are
// recomputed, and the table is re-ranked. AutoCommit optionally registers
// the top recommendation so subsequent drivers see it.
type Balanced struct {
	inner      Method
	tracker    *LoadTracker
	AutoCommit bool
}

// NewBalanced wraps inner with the tracker's redirection.
func NewBalanced(inner Method, tracker *LoadTracker) *Balanced {
	return &Balanced{inner: inner, tracker: tracker, AutoCommit: true}
}

// Name implements Method.
func (m *Balanced) Name() string { return m.inner.Name() + "+Balanced" }

// Reset implements Method; the tracker intentionally survives (demand is
// fleet-wide, not per-trip).
func (m *Balanced) Reset() { m.inner.Reset() }

// SetWorkers implements WorkersConfigurable by forwarding to the inner
// method. Balanced itself stays order-dependent (AutoCommit feeds the
// tracker), so it is deliberately not a ConcurrentRanker.
func (m *Balanced) SetWorkers(n int) {
	if wc, ok := m.inner.(WorkersConfigurable); ok {
		wc.SetWorkers(n)
	}
}

// Rank implements Method.
func (m *Balanced) Rank(q Query) OfferingTable {
	q = q.normalized()
	table := m.inner.Rank(q)
	if len(table.Entries) == 0 {
		return table
	}
	adjusted := make([]Entry, 0, len(table.Entries))
	for _, e := range table.Entries {
		induced := m.tracker.InducedBusy(e.Charger.ID, e.Comp.ETA)
		if induced > 0 {
			comp := e.Comp
			comp.A = comp.A.Scale(1 - induced)
			e.Comp = comp
			e.SC = comp.SC(q.Weights)
		}
		adjusted = append(adjusted, e)
	}
	table.Entries = Rank(adjusted, q.K)
	if m.AutoCommit {
		if top, ok := table.Top(); ok {
			m.tracker.Commit(top.Charger.ID, top.Comp.ETA)
		}
	}
	return table
}

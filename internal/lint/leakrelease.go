package lint

// LeakRelease enforces the ownership contract behind the pooled search
// kernel (PR 4): every value of a releasable type — a named type with a
// niladic Release/release method, i.e. roadnet.Expansion, the pooled
// searchState, cknn's DeroutingMaps — that a function acquires must reach
// Release on every path out of the function, directly or through a defer
// (defers also cover panic paths). Aliased values share one abstract
// resource, so releasing twice through different names is flagged too.
//
// The analysis is a forward dataflow pass over the internal/lint/flow
// CFG. Ownership leaves the tracked set when the value escapes: returned,
// stored in a composite literal or non-local location, sent on a channel,
// captured by a closure, or passed to a callee the package summaries
// cannot vouch for. Escaped values produce no findings — false negatives
// over false positives.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ecocharge/internal/lint/flow"
)

var LeakRelease = &Analyzer{
	Name: "leakrelease",
	Doc:  "acquired releasable values (Expansion, pooled state) must reach Release() on every path",
	Run:  runLeakRelease,
}

func runLeakRelease(p *Pass) {
	sums := flow.Summarize(p.Pkg.Files, p.Pkg.Info, p.Pkg.Types)
	for _, f := range p.Pkg.Files {
		flow.Functions(f, func(name string, fn ast.Node, body *ast.BlockStmt) {
			a := &lrAnalysis{
				pass:     p,
				sums:     sums,
				info:     p.Pkg.Info,
				acquires: make(map[ast.Node]map[int]*lrAcquire),
			}
			a.run(body)
		})
	}
}

// lrBits is the abstract state of one acquired resource. Bits are
// may-facts: the union join keeps every state the value can be in on
// some path.
type lrBits uint8

const (
	lrLive     lrBits = 1 << iota // unreleased on some path
	lrReleased                    // Release already ran on some path
	lrDeferRel                    // a deferred Release covers the exits
	lrEscaped                     // ownership left the function
)

// lrAcquire is one acquire site: a call (or pool type-assertion) whose
// result slot carries a releasable type.
type lrAcquire struct {
	id       int
	pos      token.Pos
	typeName string
}

// lrFact is the dataflow fact: which local names may be bound to which
// acquired resources, and what state each resource is in. A name maps to
// a sorted id set because joins merge bindings from different paths
// (var d T; if c { d = acquire1() } else { d = acquire2() }): releasing
// the name then releases every resource it may denote.
type lrFact struct {
	bind  map[types.Object][]int
	state map[int]lrBits
}

func lrEmpty() lrFact {
	return lrFact{bind: make(map[types.Object][]int), state: make(map[int]lrBits)}
}

func lrClone(f lrFact) lrFact {
	out := lrFact{
		bind:  make(map[types.Object][]int, len(f.bind)),
		state: make(map[int]lrBits, len(f.state)),
	}
	for k, v := range f.bind {
		out.bind[k] = append([]int(nil), v...)
	}
	for k, v := range f.state {
		out.state[k] = v
	}
	return out
}

func lrEqual(a, b lrFact) bool {
	if len(a.bind) != len(b.bind) || len(a.state) != len(b.state) {
		return false
	}
	for k, v := range a.bind {
		w := b.bind[k]
		if len(v) != len(w) {
			return false
		}
		for i := range v {
			if v[i] != w[i] {
				return false
			}
		}
	}
	for k, v := range a.state {
		if b.state[k] != v {
			return false
		}
	}
	return true
}

// mergeIDs unions two sorted id sets.
func mergeIDs(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func lrJoin(dst, src lrFact) lrFact {
	for k, v := range src.bind {
		dst.bind[k] = mergeIDs(dst.bind[k], v)
	}
	for k, v := range src.state {
		dst.state[k] |= v
	}
	return dst
}

type lrAnalysis struct {
	pass *Pass
	sums *flow.Summaries
	info *types.Info
	// acquires indexes acquire sites by AST node and result slot, so ids
	// are stable across solver iterations.
	acquires map[ast.Node]map[int]*lrAcquire
	nextID   int
	byID     []*lrAcquire
}

// reporter is non-nil only during the final replay, so the fixpoint
// iterations stay silent.
type lrReporter func(pos token.Pos, format string, args ...any)

func (a *lrAnalysis) run(body *ast.BlockStmt) {
	// Pre-pass: register every acquire site in source order.
	flow.Inspect(body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			for _, slot := range a.acquireSlots(e) {
				a.register(n, slot)
			}
		}
		return true
	})
	if a.nextID == 0 {
		return
	}

	g := flow.New(body)
	res := flow.Solve(g, flow.Problem[lrFact]{
		Dir:      flow.Forward,
		Boundary: lrEmpty,
		Init:     lrEmpty,
		Transfer: func(b *flow.Block, in lrFact) lrFact {
			for _, n := range b.Nodes {
				a.step(n, &in, nil)
			}
			return in
		},
		Join:  lrJoin,
		Equal: lrEqual,
		Clone: lrClone,
	})

	// Replay each block once with reporting on: double releases and
	// discarded results are anchored at their use sites.
	rep := func(pos token.Pos, format string, args ...any) {
		a.pass.Reportf(pos, format, args...)
	}
	for _, b := range g.Blocks {
		fact := lrClone(res.In[b])
		for _, n := range b.Nodes {
			a.step(n, &fact, rep)
		}
	}

	// Exit check: a resource that may still be live with no deferred
	// release and no escape leaks on some path.
	exit := res.In[g.Exit]
	ids := make([]int, 0, len(exit.state))
	for id := range exit.state {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		bits := exit.state[id]
		if bits&lrLive != 0 && bits&(lrDeferRel|lrEscaped) == 0 {
			acq := a.byID[id]
			a.pass.Reportf(acq.pos, "%s acquired here is not released on every path out of the function (add Release or defer it)", acq.typeName)
		}
	}
}

func (a *lrAnalysis) register(n ast.Node, slot int) {
	m := a.acquires[n]
	if m == nil {
		m = make(map[int]*lrAcquire)
		a.acquires[n] = m
	}
	if m[slot] != nil {
		return
	}
	acq := &lrAcquire{id: a.nextID, pos: n.Pos()}
	acq.typeName = a.slotTypeName(n.(ast.Expr), slot)
	a.nextID++
	m[slot] = acq
	a.byID = append(a.byID, acq)
}

// acquireSlots returns the result slots of e that carry releasable
// types, for expressions that confer ownership: function/method calls
// and type assertions over call results (the pool.Get().(*T) idiom).
func (a *lrAnalysis) acquireSlots(e ast.Expr) []int {
	switch e := e.(type) {
	case *ast.CallExpr:
		if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() {
			return nil // conversion, not a call
		}
		t := a.info.TypeOf(e)
		if tuple, ok := t.(*types.Tuple); ok {
			var slots []int
			for i := 0; i < tuple.Len(); i++ {
				if _, ok := flow.ReleasableType(tuple.At(i).Type()); ok {
					slots = append(slots, i)
				}
			}
			return slots
		}
		if _, ok := flow.ReleasableType(t); ok {
			return []int{0}
		}
	case *ast.TypeAssertExpr:
		if _, ok := ast.Unparen(e.X).(*ast.CallExpr); !ok {
			return nil // asserting a held value does not create ownership
		}
		if _, ok := flow.ReleasableType(a.info.TypeOf(e)); ok {
			return []int{0}
		}
	}
	return nil
}

func (a *lrAnalysis) slotTypeName(e ast.Expr, slot int) string {
	t := a.info.TypeOf(e)
	if tuple, ok := t.(*types.Tuple); ok && slot < tuple.Len() {
		t = tuple.At(slot).Type()
	}
	name, _ := flow.ReleasableType(t)
	return name
}

// step interprets one CFG node against the fact. With rep non-nil it also
// reports use-site findings (double release, discarded result).
func (a *lrAnalysis) step(n ast.Node, fact *lrFact, rep lrReporter) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.stepAssign(n, fact, rep)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.stepValueSpec(vs, fact, rep)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if m := a.acquires[call]; m != nil {
				for _, acq := range m {
					if rep != nil {
						rep(call.Pos(), "releasable %s returned here is discarded without Release", acq.typeName)
					}
				}
			}
		}
		a.scan(n, fact, rep, nil)
	case *ast.DeferStmt:
		a.stepDefer(n, fact, rep)
	case *ast.GoStmt:
		// A goroutine's timing is unknowable statically: every resource it
		// references leaves our control, even through a summarized callee.
		ast.Inspect(n, func(inner ast.Node) bool {
			if id, ok := inner.(*ast.Ident); ok {
				if res, bound := fact.bind[a.info.Uses[id]]; bound {
					fact.escapeAll(res)
				}
			}
			return true
		})
	default:
		a.scan(n, fact, rep, nil)
	}
}

// stepAssign handles bindings: x := acquire(), aliases y := x, tuple
// forms v, err := acquire(), and strong updates on reassignment.
func (a *lrAnalysis) stepAssign(as *ast.AssignStmt, fact *lrFact, rep lrReporter) {
	skip := make(map[ast.Node]bool)

	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Rhs {
			rhs := ast.Unparen(as.Rhs[i])
			lhs := ast.Unparen(as.Lhs[i])
			if m := a.acquires[rhs]; m != nil && m[0] != nil {
				a.bindAcquire(lhs, m[0], fact, rep)
				skip[lhs] = true
				continue
			}
			if id, ok := rhs.(*ast.Ident); ok {
				if res, bound := fact.bind[a.info.Uses[id]]; bound {
					// Alias: both names denote the same resource(s).
					if tgt, ok := lhs.(*ast.Ident); ok {
						if tgt.Name != "_" {
							if obj := a.lhsObj(tgt); obj != nil {
								fact.bind[obj] = append([]int(nil), res...)
							}
						}
						skip[lhs], skip[rhs] = true, true
						continue
					}
					// Stored into a field/element: ownership escapes.
					fact.escapeAll(res)
					skip[rhs] = true
					continue
				}
			}
			// Reassigning a bound name to something else drops the binding;
			// the old resource keeps its state (a leak there is still real).
			if tgt, ok := lhs.(*ast.Ident); ok {
				if obj := a.lhsObj(tgt); obj != nil {
					delete(fact.bind, obj)
				}
				skip[lhs] = true
			}
		}
	} else if len(as.Rhs) == 1 {
		// v, err := acquire() — bind each releasable result slot.
		rhs := ast.Unparen(as.Rhs[0])
		if m := a.acquires[rhs]; m != nil {
			for slot, acq := range m {
				if slot < len(as.Lhs) {
					a.bindAcquire(ast.Unparen(as.Lhs[slot]), acq, fact, rep)
				}
			}
		}
		for _, lhs := range as.Lhs {
			if tgt, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				skip[lhs] = true
				if m := a.acquires[rhs]; m == nil {
					if obj := a.lhsObj(tgt); obj != nil {
						delete(fact.bind, obj)
					}
				}
			}
		}
	}
	a.scan(as, fact, rep, skip)
}

func (a *lrAnalysis) stepValueSpec(vs *ast.ValueSpec, fact *lrFact, rep lrReporter) {
	skip := make(map[ast.Node]bool)
	if len(vs.Values) == len(vs.Names) {
		for i, v := range vs.Values {
			rhs := ast.Unparen(v)
			if m := a.acquires[rhs]; m != nil && m[0] != nil {
				a.bindAcquire(vs.Names[i], m[0], fact, rep)
				skip[vs.Names[i]] = true
			}
		}
	} else if len(vs.Values) == 1 {
		rhs := ast.Unparen(vs.Values[0])
		if m := a.acquires[rhs]; m != nil {
			for slot, acq := range m {
				if slot < len(vs.Names) {
					a.bindAcquire(vs.Names[slot], acq, fact, rep)
					skip[vs.Names[slot]] = true
				}
			}
		}
	}
	a.scan(vs, fact, rep, skip)
}

// bindAcquire binds the target of a fresh acquire, or reports a
// discarded result for the blank identifier.
func (a *lrAnalysis) bindAcquire(lhs ast.Node, acq *lrAcquire, fact *lrFact, rep lrReporter) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			if rep != nil {
				rep(acq.pos, "releasable %s is assigned to the blank identifier and can never be released", acq.typeName)
			}
			return
		}
		if obj := a.lhsObj(id); obj != nil {
			fact.bind[obj] = []int{acq.id}
			fact.state[acq.id] = lrLive
			return
		}
	}
	// Acquired straight into a field or element: ownership is stored away,
	// out of this function's hands.
	fact.state[acq.id] = lrEscaped
}

// lhsObj resolves an assignment target through either Defs (:=) or Uses.
func (a *lrAnalysis) lhsObj(id *ast.Ident) types.Object {
	if obj := a.info.Defs[id]; obj != nil {
		return obj
	}
	return a.info.Uses[id]
}

func (a *lrAnalysis) stepDefer(ds *ast.DeferStmt, fact *lrFact, rep lrReporter) {
	call := ds.Call
	skip := make(map[ast.Node]bool)
	deferRelease := func(ids []int) {
		doubled := false
		for _, id := range ids {
			if fact.state[id]&(lrReleased|lrDeferRel) != 0 {
				doubled = true
			}
			fact.state[id] = (fact.state[id] &^ lrLive) | lrDeferRel
		}
		if doubled && rep != nil {
			rep(call.Pos(), "resource is released more than once (an earlier Release or deferred Release already covers it)")
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if ids, bound := fact.bind[a.info.Uses[base]]; bound {
				released := false
				if isReleaseMethod(sel.Sel.Name) && len(call.Args) == 0 {
					released = true
				} else if m := a.sums.Of(a.info.Uses[sel.Sel]); m != nil && m.Releases[flow.Receiver] {
					released = true
				}
				if released {
					deferRelease(ids)
					skip[base] = true
				}
			}
		}
	}
	// defer helper(x) where the helper's summary releases x.
	for i, arg := range call.Args {
		base, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		ids, bound := fact.bind[a.info.Uses[base]]
		if !bound {
			continue
		}
		if m := a.sums.Of(flow.CalleeObject(a.info, call)); m != nil && m.Releases[i] {
			deferRelease(ids)
			skip[base] = true
		}
	}
	a.scan(ds, fact, rep, skip)
}

// escape moves a resource out of the tracked (live) set.
func (f *lrFact) escape(id int) {
	f.state[id] = (f.state[id] &^ lrLive) | lrEscaped
}

func (f *lrFact) escapeAll(ids []int) {
	for _, id := range ids {
		f.escape(id)
	}
}

// scan classifies every bound-identifier occurrence under n the same way
// the summary builder classifies parameters: method calls may release,
// same-package callees are consulted, everything else that smuggles the
// value out is an escape.
func (a *lrAnalysis) scan(n ast.Node, fact *lrFact, rep lrReporter, skip map[ast.Node]bool) {
	var stack []ast.Node
	flow.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			// A closure referencing a bound name extends the value's
			// lifetime beyond this function's control: escape.
			ast.Inspect(fl.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if res, bound := fact.bind[a.info.Uses[id]]; bound {
						fact.escapeAll(res)
					}
				}
				return true
			})
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !skip[id] {
			if res, bound := fact.bind[a.info.Uses[id]]; bound {
				a.classify(stack, id, res, fact, rep)
			}
		}
		stack = append(stack, n)
		return true
	})
}

func (a *lrAnalysis) classify(stack []ast.Node, id *ast.Ident, res []int, fact *lrFact, rep lrReporter) {
	use := flow.ClassifyUse(stack, id)
	switch use.Kind {
	case flow.UseMethodCall:
		if use.Path != "" {
			return // method on a field of the resource: a read
		}
		name := use.Sel.Sel.Name
		if isReleaseMethod(name) && len(use.Call.Args) == 0 {
			a.release(res, use.Call.Pos(), fact, rep)
			return
		}
		if m := a.sums.Of(a.info.Uses[use.Sel.Sel]); m != nil {
			if m.Releases[flow.Receiver] {
				a.release(res, use.Call.Pos(), fact, rep)
			}
			if m.Captures[flow.Receiver] {
				fact.escapeAll(res)
			}
		}
		// Other methods on the value are plain uses.
	case flow.UseBareArg:
		if m := a.sums.Of(flow.CalleeObject(a.info, use.Call)); m != nil {
			if m.Releases[use.Arg] {
				a.release(res, use.Call.Pos(), fact, rep)
			}
			if m.Captures[use.Arg] {
				fact.escapeAll(res)
			}
			return // summarized callee vouches for the argument
		}
		// Unknown, cross-package or func-value callee: assume captured.
		fact.escapeAll(res)
	case flow.UseFieldRead:
		if use.InReturn && use.Expr != nil {
			if _, rel := flow.ReleasableType(a.info.TypeOf(use.Expr)); rel {
				fact.escapeAll(res)
			}
		}
	case flow.UseCapture:
		fact.escapeAll(res)
	}
}

func (a *lrAnalysis) release(res []int, pos token.Pos, fact *lrFact, rep lrReporter) {
	doubled := false
	for _, id := range res {
		if fact.state[id]&(lrReleased|lrDeferRel) != 0 {
			doubled = true
		}
		fact.state[id] = (fact.state[id] &^ lrLive) | lrReleased
	}
	if doubled && rep != nil {
		rep(pos, "resource is released more than once (aliases share the underlying value)")
	}
}

func isReleaseMethod(name string) bool { return name == "Release" || name == "release" }

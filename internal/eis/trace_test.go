package eis

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ecocharge/internal/obs"
)

// TestTracePropagationAcrossRetries proves the span context survives the
// client→server round trip through real HTTP headers, retries included:
// a request that fails twice before succeeding must produce ONE trace
// holding the client root span, one child span per attempt, and a server
// span parented on the attempt that reached the handler.
func TestTracePropagationAcrossRetries(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, obs.TracerOptions{})

	srv := NewServer(env, ServerOptions{
		Clock:  func() time.Time { return fixedNow },
		Tracer: tr,
	})
	inner := srv.Handler()
	// The first two exchanges die at the transport edge with a retryable
	// 503 — before the instrumented routes, as a dying proxy would — so
	// only the third attempt produces a server span.
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/traffic") && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	client := NewClientOpts(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		MaxRetries: 3,
		Sleep:      func(time.Duration) {}, // retries must not slow the suite
		Tracer:     tr,
	})
	if _, err := client.Traffic(context.Background(), fixedNow); err != nil {
		t.Fatalf("Traffic after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d exchanges, want 3 (two failures + success)", got)
	}

	recs, err := obs.ParseSpanRecords(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseSpanRecords: %v", err)
	}
	var root, server obs.SpanRecord
	var attempts []obs.SpanRecord
	for _, r := range recs {
		switch {
		case strings.HasPrefix(r.Name, "eis.client "):
			root = r
		case r.Name == "eis.attempt":
			attempts = append(attempts, r)
		case r.Name == "eis.traffic":
			server = r
		default:
			t.Fatalf("unexpected span %q", r.Name)
		}
	}
	if root.Span == "" || root.Parent != "" {
		t.Fatalf("client root span malformed: %+v", root)
	}
	if len(attempts) != 3 {
		t.Fatalf("exported %d attempt spans, want 3", len(attempts))
	}
	if server.Span == "" {
		t.Fatal("no server span exported")
	}
	// One trace end to end.
	for _, r := range recs {
		if r.Trace != root.Trace {
			t.Fatalf("span %q escaped the trace: %s vs %s", r.Name, r.Trace, root.Trace)
		}
	}
	// Every attempt hangs off the root, and the server span hangs off the
	// attempt that got through (the last one).
	for i, a := range attempts {
		if a.Parent != root.Span {
			t.Fatalf("attempt %d parent = %q, want root %q", i, a.Parent, root.Span)
		}
	}
	if want := attempts[len(attempts)-1].Span; server.Parent != want {
		t.Fatalf("server span parent = %q, want the successful attempt %q", server.Parent, want)
	}
}

// TestMetricsAndVarsEndpoints pins the observability surface of the EIS:
// /metrics serves the text exposition with the per-endpoint histograms,
// /debug/vars serves the JSON snapshot.
func TestMetricsAndVarsEndpoints(t *testing.T) {
	ts, client, _ := testServer(t)
	if _, err := client.Traffic(context.Background(), fixedNow); err != nil {
		t.Fatalf("Traffic: %v", err)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE eis_http_seconds_traffic histogram",
		"eis_http_seconds_traffic_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp2, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/vars content type = %q", ct)
	}
	if !strings.Contains(string(body2), "eis_http_seconds_traffic_count") {
		t.Fatalf("/debug/vars missing the traffic histogram:\n%s", body2)
	}
}

// Package ec implements the three Estimated Components of the paper
// (§III.B): the sustainable charging level L driven by a weather/solar
// model, the charger availability A driven by busy timetables, and the
// derouting cost D driven by a traffic model. Each model produces interval
// estimates whose width grows with the forecast horizon, mirroring the
// GFS/ECMWF accuracy figures the paper cites (95–96 % up to 12 h, 85–95 %
// up to 3 days).
//
// All randomness is deterministic: models derive "ground truth" from hash
// noise over (seed, entity, time-bucket), so experiments are reproducible
// and a forecast at horizon zero converges to the truth.
package ec

import "math"

// splitmix64 is the finalizer of the SplitMix64 generator, used as a cheap
// high-quality hash for deterministic noise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashNoise returns a deterministic pseudo-random value in [0, 1) derived
// from the given keys.
func hashNoise(keys ...uint64) float64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return float64(h>>11) / float64(1<<53)
}

// smoothNoise returns noise in [0,1) that varies smoothly over t (hours):
// linear interpolation between hash noise at integer hour buckets. Smooth
// variation matters because cloud cover and crowding do not jump between
// samples.
func smoothNoise(seed, entity uint64, tHours float64) float64 {
	h0 := math.Floor(tHours)
	frac := tHours - h0
	a := hashNoise(seed, entity, uint64(int64(h0)))
	b := hashNoise(seed, entity, uint64(int64(h0)+1))
	// Smoothstep interpolation avoids derivative discontinuities.
	s := frac * frac * (3 - 2*frac)
	return a*(1-s) + b*s
}

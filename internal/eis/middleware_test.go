package eis

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMiddlewareLogsRequests(t *testing.T) {
	var buf bytes.Buffer
	mw := &Middleware{Logger: log.New(&buf, "", 0)}
	h := mw.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(buf.String(), "GET /x -> 418") {
		t.Errorf("log line missing: %q", buf.String())
	}
}

func TestMiddlewareRecoversPanics(t *testing.T) {
	var buf bytes.Buffer
	mw := &Middleware{Logger: log.New(&buf, "", 0)}
	h := mw.Wrap(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/panic")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(buf.String(), "panic") || !strings.Contains(buf.String(), "boom") {
		t.Errorf("panic not logged: %q", buf.String())
	}
}

func TestMiddlewareShedsLoad(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	mw := &Middleware{MaxInFlight: 2}
	h := mw.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Occupy both slots.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-started
	<-started
	// Third request must be shed immediately.
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After")
	}
	close(release)
	wg.Wait()
}

func TestMiddlewareEndToEndWithServer(t *testing.T) {
	env := testEnv(t)
	srv := NewServer(env, ServerOptions{Clock: func() time.Time { return fixedNow }})
	mw := &Middleware{MaxInFlight: 16}
	ts := httptest.NewServer(mw.Wrap(srv.Handler()))
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if !client.Healthy(context.Background()) {
		t.Fatal("wrapped server unhealthy")
	}
	center := env.Graph.Bounds().Center()
	if _, err := client.Chargers(context.Background(), center, 3000); err != nil {
		t.Fatalf("Chargers through middleware: %v", err)
	}
}

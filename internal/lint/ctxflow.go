package lint

// CtxFlow enforces context propagation, the cancellation half of the
// serving story:
//
//  1. Everywhere: a function that accepts a context.Context (or an
//     *http.Request, which carries one) must not make blocking calls that
//     ignore it — time.Sleep instead of a ctx-aware timer wait, or the
//     context-less net/http entry points (http.Get, http.Post,
//     http.NewRequest, ...) instead of their WithContext forms.
//  2. In server/worker packages (internal/eis, internal/cknn,
//     internal/experiment, cmd/...): an unbounded `for` loop — no
//     condition and no path that leaves the loop — must observe
//     ctx.Done() or ctx.Err(); otherwise the goroutine running it can
//     never be cancelled.
//
// Rule 2 leans on the flow package's loop analysis: a loop that checks
// ctx.Done() in a select necessarily has an exit edge, so a loop with no
// exit at all is exactly the un-cancellable kind.

import (
	"go/ast"
	"go/types"
	"strings"

	"ecocharge/internal/lint/flow"
)

var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context must be threaded through blocking calls; unbounded worker loops must observe ctx",
	Run:  runCtxFlow,
}

// ctxLoopPackages are the server/worker packages where every unbounded
// loop must be cancellable (rule 2).
var ctxLoopPackages = []string{"internal/eis", "internal/cknn", "internal/experiment", "internal/fleet"}

func runCtxFlow(p *Pass) {
	loopScope := strings.Contains(p.Pkg.ImportPath, "cmd/")
	for _, suffix := range ctxLoopPackages {
		if strings.HasSuffix(p.Pkg.ImportPath, suffix) {
			loopScope = true
		}
	}
	for _, f := range p.Pkg.Files {
		flow.Functions(f, func(name string, fn ast.Node, body *ast.BlockStmt) {
			if hasCtxParam(p, fn) {
				checkBlockingCalls(p, body)
			}
			if loopScope {
				checkUnboundedLoops(p, body)
			}
		})
	}
}

// hasCtxParam reports whether the function declares a context.Context or
// *http.Request parameter.
func hasCtxParam(p *Pass, fn ast.Node) bool {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	default:
		return false
	}
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := p.TypeOf(field.Type)
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// checkBlockingCalls flags ctx-ignoring blocking calls in the body of a
// function that has a context available. Nested function literals are
// skipped: each is visited as its own unit, and one without a ctx
// parameter cannot thread what it does not have.
//
// Detection is reference-based, not call-based: `sleep := time.Sleep`
// followed by `sleep(d)` ignores the context just as thoroughly as a
// direct call, so any mention of time.Sleep (or a context-less net/http
// entry point) in a ctx-bearing function is a finding.
func checkBlockingCalls(p *Pass, body *ast.BlockStmt) {
	flow.Inspect(body, func(n ast.Node) bool {
		name, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := p.Pkg.Info.Uses[name].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods like http.Header.Get are not entry points
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Sleep" {
				p.Reportf(name.Pos(), "time.Sleep in a function that has a context; use a timer with select on ctx.Done() so the wait is cancellable")
			}
		case "net/http":
			switch fn.Name() {
			case "Get", "Post", "Head", "PostForm":
				p.Reportf(name.Pos(), "http.%s ignores the function's context; build the request with http.NewRequestWithContext", fn.Name())
			case "NewRequest":
				p.Reportf(name.Pos(), "http.NewRequest drops the function's context; use http.NewRequestWithContext")
			}
		}
		return true
	})
}

// checkUnboundedLoops flags for-loops with no exit path and no ctx
// observation (rule 2).
func checkUnboundedLoops(p *Pass, body *ast.BlockStmt) {
	g := flow.New(body)
	for _, loop := range g.Loops {
		fs, ok := loop.Stmt.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			continue
		}
		if loop.HasExit() {
			continue
		}
		// Defensive double-check: if the loop body mentions ctx.Done or
		// ctx.Err anyway, trust the author over the graph.
		if loopObservesCtx(p, loop) {
			continue
		}
		p.Reportf(fs.Pos(), "unbounded for loop never observes ctx.Done()/ctx.Err(); the goroutine running it cannot be cancelled")
	}
}

func loopObservesCtx(p *Pass, loop *flow.Loop) bool {
	found := false
	for _, b := range loop.Blocks {
		for _, n := range b.Nodes {
			flow.Inspect(n, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if (sel.Sel.Name == "Done" || sel.Sel.Name == "Err") && isContextType(p.TypeOf(sel.X)) {
					found = true
				}
				return true
			})
		}
	}
	return found
}

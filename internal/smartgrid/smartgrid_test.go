package smartgrid

import (
	"math"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/interval"
)

var (
	weekdayNight   = time.Date(2024, 6, 18, 2, 0, 0, 0, time.UTC)  // Tuesday 02:00
	weekdayEvening = time.Date(2024, 6, 18, 18, 0, 0, 0, time.UTC) // Tuesday 18:00
	weekdayNoon    = time.Date(2024, 6, 18, 13, 0, 0, 0, time.UTC)
	weekendMorning = time.Date(2024, 6, 22, 9, 0, 0, 0, time.UTC) // Saturday 09:00
)

func TestTariffBands(t *testing.T) {
	tf := DefaultTariff()
	if b := tf.BandAt(weekdayNight); b != OffPeak {
		t.Errorf("night band = %v", b)
	}
	if b := tf.BandAt(weekdayEvening); b != Peak {
		t.Errorf("weekday evening band = %v", b)
	}
	if b := tf.BandAt(weekdayNoon); b != Shoulder {
		t.Errorf("weekday noon band = %v", b)
	}
	if b := tf.BandAt(weekendMorning); b != OffPeak {
		t.Errorf("weekend morning band = %v", b)
	}
	// Prices ordered cheapest to priciest.
	if !(tf.PriceAt(weekdayNight) < tf.PriceAt(weekdayNoon) && tf.PriceAt(weekdayNoon) < tf.PriceAt(weekdayEvening)) {
		t.Error("band prices not ordered")
	}
	if tf.MaxPrice() != tf.PriceAt(weekdayEvening) {
		t.Error("MaxPrice is not the peak price")
	}
}

func TestTariffCustomSchedule(t *testing.T) {
	tf := DefaultTariff()
	tf.Schedule = func(time.Weekday, int) Band { return Peak }
	if tf.BandAt(weekdayNight) != Peak {
		t.Error("custom schedule ignored")
	}
}

func TestBandString(t *testing.T) {
	if OffPeak.String() != "off-peak" || Peak.String() != "peak" || Band(9).String() == "" {
		t.Error("Band String wrong")
	}
}

func TestSessionPriceSpansBands(t *testing.T) {
	tf := DefaultTariff()
	// Session from 22:30 to 23:30 crosses shoulder → off-peak.
	start := time.Date(2024, 6, 18, 22, 30, 0, 0, time.UTC)
	iv := tf.SessionPrice(start, time.Hour)
	if iv.Min != tf.prices()[OffPeak] || iv.Max != tf.prices()[Shoulder] {
		t.Errorf("crossing session price = %v", iv)
	}
	// Zero-duration session is the instantaneous price.
	if got := tf.SessionPrice(weekdayNight, 0); !got.IsExact() {
		t.Errorf("instant price = %v", got)
	}
}

func TestGridSignalShape(t *testing.T) {
	g := NewGridSignal()
	evening := g.Truth(weekdayEvening.Add(time.Hour)) // 19:00 peak
	noon := g.Truth(weekdayNoon)
	night := g.Truth(weekdayNight.Add(2 * time.Hour)) // 04:00
	if evening <= noon {
		t.Errorf("evening stress %v not above solar noon %v", evening, noon)
	}
	if evening <= night {
		t.Errorf("evening stress %v not above deep night %v", evening, night)
	}
	for h := 0; h < 24; h++ {
		v := g.Truth(time.Date(2024, 6, 18, h, 0, 0, 0, time.UTC))
		if v < 0 || v > 1 {
			t.Fatalf("stress %v out of range at hour %d", v, h)
		}
	}
	// Weekend milder than weekday at the same hour.
	sat := g.Truth(time.Date(2024, 6, 22, 19, 0, 0, 0, time.UTC))
	tue := g.Truth(time.Date(2024, 6, 18, 19, 0, 0, 0, time.UTC))
	if sat >= tue {
		t.Errorf("weekend stress %v not below weekday %v", sat, tue)
	}
}

func TestGridForecastContainsTruth(t *testing.T) {
	g := NewGridSignal()
	issued := weekdayNoon
	for _, horizon := range []time.Duration{0, time.Hour, 6 * time.Hour} {
		ts := issued.Add(horizon)
		iv := g.Forecast(ts, issued)
		if !iv.Contains(g.Truth(ts)) && iv.Min > 0 && iv.Max < 1 {
			t.Errorf("horizon %v: forecast %v missing truth %v", horizon, iv, g.Truth(ts))
		}
		if iv.Min < 0 || iv.Max > 1 {
			t.Errorf("forecast %v out of range", iv)
		}
	}
	near := g.Forecast(issued.Add(30*time.Minute), issued).Width()
	far := g.Forecast(issued.Add(6*time.Hour), issued).Width()
	if far < near {
		t.Errorf("forecast width shrank with horizon: %v vs %v", near, far)
	}
}

// adviceTable builds a two-entry table: equal SC, one charging at peak and
// one at off-peak.
func adviceTable() cknn.OfferingTable {
	mk := func(id int64, eta time.Time) cknn.Entry {
		return cknn.Entry{
			Charger: &charger.Charger{ID: id, Rate: charger.RateAC22},
			SC:      interval.New(0.7, 0.8),
			Comp:    cknn.Components{ETA: eta},
		}
	}
	return cknn.OfferingTable{Entries: []cknn.Entry{
		mk(1, weekdayEvening), // peak price, high stress
		mk(2, weekdayNight),   // off-peak, low stress
	}}
}

func TestAdvisorPrefersOffPeak(t *testing.T) {
	a := NewAdvisor(DefaultTariff(), NewGridSignal())
	out := a.Advise(adviceTable(), weekdayNight)
	if len(out) != 2 {
		t.Fatalf("got %d advices", len(out))
	}
	if out[0].Entry.Charger.ID != 2 {
		t.Fatalf("advisor preferred the peak-hour charger: %+v", out[0])
	}
	if out[0].Band != OffPeak || out[1].Band != Peak {
		t.Errorf("bands = %v, %v", out[0].Band, out[1].Band)
	}
	// The grid-aware score is below the raw SC (penalties only subtract).
	for _, ad := range out {
		if ad.GS.Mid() > ad.Entry.SC.Mid() {
			t.Errorf("GS %v above SC %v", ad.GS, ad.Entry.SC)
		}
	}
}

func TestAdvisorEmptyTable(t *testing.T) {
	a := NewAdvisor(DefaultTariff(), NewGridSignal())
	if out := a.Advise(cknn.OfferingTable{}, weekdayNoon); len(out) != 0 {
		t.Errorf("advice for empty table: %v", out)
	}
}

func TestSessionCost(t *testing.T) {
	a := NewAdvisor(DefaultTariff(), NewGridSignal())
	cost := a.SessionCost(weekdayNight, 20) // 20 kWh at off-peak 0.18
	if math.Abs(cost.Mid()-20*0.18) > 1e-9 {
		t.Errorf("off-peak session cost = %v", cost)
	}
	if got := a.SessionCost(weekdayNight, 0); !got.IsExact() || got.Mid() != 0 {
		t.Errorf("zero-energy cost = %v", got)
	}
	if got := a.SessionCost(weekdayNight, -5); got.Mid() != 0 {
		t.Errorf("negative energy cost = %v", got)
	}
}

func TestAdvisorDeterministicTies(t *testing.T) {
	// Same SC, same ETA: order falls back to charger ID.
	mk := func(id int64) cknn.Entry {
		return cknn.Entry{
			Charger: &charger.Charger{ID: id},
			SC:      interval.Exact(0.5),
			Comp:    cknn.Components{ETA: weekdayNoon},
		}
	}
	table := cknn.OfferingTable{Entries: []cknn.Entry{mk(3), mk(1), mk(2)}}
	out := NewAdvisor(DefaultTariff(), NewGridSignal()).Advise(table, weekdayNoon)
	for i, want := range []int64{1, 2, 3} {
		if out[i].Entry.Charger.ID != want {
			t.Fatalf("tie order: %v", out)
		}
	}
}

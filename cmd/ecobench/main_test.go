package main

import (
	"testing"

	"ecocharge/internal/experiment"
)

func TestRunUnknownFigure(t *testing.T) {
	cfg := experiment.RunConfig{Repetitions: 1, TripsPerRep: 1}
	if err := run("42", 0.0005, 1, cfg, ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep is slow")
	}
	cfg := experiment.RunConfig{Repetitions: 1, TripsPerRep: 1, SegmentLenM: 4000}
	if err := run("6", 0.0003, 1, cfg, ""); err != nil {
		t.Fatalf("run fig 6: %v", err)
	}
}

// Package fixture exercises the obsalloc analyzer: the file poses as part
// of internal/cknn (see the import path in lint_test.go), where metric
// names handed to the obs registry must be compile-time constants.
package fixture

import "fmt"

// Registry mirrors the real obs.Registry surface the analyzer matches on.
type Registry struct{}

func (r *Registry) Counter(name string) *Counter             { return nil }
func (r *Registry) Gauge(name string) *Gauge                 { return nil }
func (r *Registry) Histogram(name string, b []float64) *Hist { return nil }
func (r *Registry) Unrelated(name string) *Counter           { return nil }

type (
	Counter struct{}
	Gauge   struct{}
	Hist    struct{}
)

const prefix = "cknn_"

// GoodConstantNames is the intended shape: every name folds at compile time.
func GoodConstantNames(r *Registry) {
	r.Counter("cknn_evaluated_total")
	r.Gauge(prefix + "cache_slots")
	r.Histogram("cknn_filter_seconds", nil)
}

// BadSprintfName is the canonical smell: a per-call formatted name.
func BadSprintfName(r *Registry, shard int) {
	r.Counter(fmt.Sprintf("cknn_shard_%d_hits_total", shard)) // flagged
}

// BadDynamicConcat builds the name from a variable: flagged on all three
// constructors.
func BadDynamicConcat(r *Registry, kind string) {
	r.Counter(prefix + kind + "_total")
	r.Gauge("cknn_" + kind)
	r.Histogram(kind, nil)
}

// GoodOtherReceiver shows that only Registry receivers are matched.
type NameBag struct{}

func (NameBag) Counter(name string) *Counter { return nil }

func GoodOtherReceiver(b NameBag, kind string) {
	b.Counter(fmt.Sprintf("free_form_%s", kind))
}

// GoodOtherMethod shows that non-constructor methods are not matched.
func GoodOtherMethod(r *Registry, kind string) {
	r.Unrelated(fmt.Sprintf("lookup_%s", kind))
}

// SuppressedWitness stands in for a deliberate dynamic name with the escape
// hatch documenting why.
func SuppressedWitness(r *Registry, dataset string) {
	//ecolint:ignore obsalloc bounded cardinality: one gauge per benchmark dataset, built at startup
	r.Gauge("bench_" + dataset + "_rows")
}

package lint

// BareDirective polices the suppression mechanism itself: an
// //ecolint:ignore directive must name at least one analyzer and must
// carry a free-text justification after the analyzer list. docs/lint.md
// has always called the reason "mandatory by convention"; this analyzer
// makes the convention machine-checked.
//
// Findings are reported through the unsuppressable path: a directive with
// no reason must not be able to silence the analyzer that flags
// directives with no reason.
var BareDirective = &Analyzer{
	Name: "baredirective",
	Doc:  "ecolint:ignore directives must name analyzers and justify the suppression",
	Run: func(p *Pass) {
		for _, d := range p.Pkg.directives() {
			switch {
			case len(d.names) == 0:
				p.reportAlways(d.pos, "ecolint:ignore directive names no analyzers")
			case d.reason == "":
				p.reportAlways(d.pos, "ecolint:ignore %s has no justification; state why the finding is acceptable", joinNames(d.names))
			}
		}
	},
}

func joinNames(names []string) string {
	out := names[0]
	for _, n := range names[1:] {
		out += "," + n
	}
	return out
}

# EcoCharge build targets. Everything is stdlib Go; no external tools.

GO ?= go

.PHONY: all build test race vet lint chaos chaos-fleet fuzz bench bench-smoke bench-diff load-smoke cover figures examples clean

all: build vet lint test chaos chaos-fleet bench-smoke load-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# Repo-specific static analysis (see docs/lint.md). Nonzero exit on findings.
# Two passes: the default build, then the race-tagged file set, so the
# tag-gated sources are held to the same bar.
lint:
	$(GO) run ./cmd/ecolint ./...
	$(GO) run ./cmd/ecolint -tags race ./...

# Chaos suite under the race detector: deterministic fault injection at
# 0%/10%/30% through every ranking method and the EIS client/server (see
# docs/resilience.md). Rate 0 must be byte-identical to the fault-free
# engine; nonzero rates must keep serving valid, correctly tagged tables.
chaos:
	$(GO) test -race -run Chaos ./internal/cknn ./internal/eis

# Fleet chaos suite under the race detector: the sharded-gateway differential
# harness (byte-identity at fault rate 0, degraded merges under shard
# blackouts/partitions/slow shards, hedged failover) plus the fleet fault
# shapes and partition/merge property tests (see docs/resilience.md).
chaos-fleet:
	$(GO) test -race -count=1 -run 'TestChaosFleet|TestFleet|TestPartition|TestShardEnv|TestMerge|TestSynth' ./internal/fleet ./internal/fault

# Smoke-run every fuzz target briefly; the seed corpora already run as part
# of `make test`, this explores beyond them. go test accepts one -fuzz
# pattern per invocation, hence the separate runs.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzFromBounds -fuzztime=10s ./internal/interval/
	$(GO) test -run='^$$' -fuzz=FuzzOps -fuzztime=10s ./internal/interval/
	$(GO) test -run='^$$' -fuzz=FuzzJSONRoundTrip -fuzztime=10s ./internal/charger/
	$(GO) test -run='^$$' -fuzz=FuzzCSVRoundTrip -fuzztime=10s ./internal/charger/
	$(GO) test -run='^$$' -fuzz=FuzzExpandToMany -fuzztime=10s ./internal/roadnet/
	$(GO) test -run='^$$' -fuzz=FuzzWireRoundTrip -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzOfferingJSONRoundTrip -fuzztime=10s ./internal/wire/

bench:
	$(GO) test -bench=. -benchmem ./...

# Minimal end-to-end benchmark: one figure on the smallest profile, emitting
# the machine-readable JSON rows (commit, workers, sc_pct, ft_ms) that CI
# uploads as an artifact for cross-commit comparison against BENCH_seed.json.
bench-smoke:
	$(GO) run ./cmd/ecobench -fig 6 -dataset Oldenburg -scale 0.0005 -reps 1 -trips 1 -json bench-smoke.json
	$(GO) test -run='^$$' -bench=BenchmarkObsOverhead -benchtime=20x ./internal/cknn
	$(GO) test -run='^$$' -bench=BenchmarkManyToMany -benchtime=10x ./internal/roadnet
	$(GO) test -run='^$$' -bench=BenchmarkWireCodec -benchtime=100x ./internal/wire
	$(GO) test -run='^$$' -bench=BenchmarkServeEncode -benchtime=20x ./internal/eis

# Re-run the seed benchmark configuration and diff ft_ms per method against
# the committed BENCH_seed.json baseline (see docs/perf.md). Fails on any
# method regressing >10% beyond the sub-ms noise floor. The delta table is
# written to bench-diff.txt for CI artifact upload. The second pair gates
# the HTTP serve path the same way against BENCH_pr9.json (Mode 2 per
# content type; wider slack because one round trip includes real HTTP).
bench-diff:
	$(GO) run ./cmd/ecobench -fig 6 -dataset Oldenburg -workers 1 -json bench-current.json
	$(GO) run ./cmd/benchdiff -seed BENCH_seed.json -current bench-current.json -report bench-diff.txt
	$(GO) run ./cmd/ecobench -fig serve -dataset Oldenburg -workers 1 -wire -json bench-serve.json
	$(GO) run ./cmd/benchdiff -seed BENCH_pr9.json -current bench-serve.json -slack-ms 1.0 -report bench-serve-diff.txt

# Open-loop load smoke: a seconds-scale rate sweep of the in-process 3-shard
# gateway on both interchange planes, emitting the benchdiff-comparable knee
# artifact (fig "load-knee"; see docs/perf.md "Load testing"). The diff vs
# the committed BENCH_load.json baseline gates primarily on goodput collapse
# (valid answers/s per rate step); the latency tolerance is deliberately
# loose because absolute p99 varies across CI machines, while goodput at
# unsaturated rates tracks the offered rate on any box.
load-smoke:
	$(GO) run ./cmd/loadgen -profile Oldenburg -scale 0.005 -seed 42 \
		-rate-sweep 50,100,200 -step-duration 2s -json load-knee.json
	$(GO) run ./cmd/benchdiff -seed BENCH_load.json -current load-knee.json \
		-tolerance 5.0 -slack-ms 50 -goodput-tolerance 0.5 -goodput-slack 20 \
		-report load-diff.txt

# Coverage gate: aggregate statement coverage across every package against a
# ratcheted floor — raise it when coverage improves, never lower it. The
# profile (cover.out) is uploaded as a CI artifact for drill-down.
COVER_FLOOR = 81.5

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < f+0) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# Regenerate every evaluation figure (paper Figs. 6-9 + the design,
# horizon, and scalability supplements) as text tables.
figures:
	$(GO) run ./cmd/ecobench -fig all -scale 0.002 -reps 5

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxi_idle
	$(GO) run ./examples/commute
	$(GO) run ./examples/server_mode
	$(GO) run ./examples/fleet_balance
	$(GO) run ./examples/custom_world

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt bench-smoke.json bench-current.json bench-diff.txt bench-serve.json bench-serve-diff.txt load-knee.json load-diff.txt cover.out

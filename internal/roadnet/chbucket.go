package roadnet

import "math"

// chbucket.go is the bucket-CH many-to-many primitive: index a fixed target
// set once by running one upward search per target and dropping (target,
// distance) entries into per-node buckets, then answer each anchor with a
// single upward sweep that probes the buckets it meets. The per-anchor cost
// is one CH search plus bucket probes — independent of the target count's
// contribution to ball volume — which is what makes repeated charger-search
// queries against a fixed candidate set tractable (ROADMAP item 2). The
// weight function is the hierarchy's: a production deployment builds one CH
// per traffic epoch and reuses the buckets for every anchor in the epoch.
//
// Distances are byte-identical to ContractionHierarchy.Query: both sides
// settle the same upward search spaces under the same weights, and the
// meeting sum dF(v)+dB(v) adds the same two operands (IEEE-754 addition is
// commutative), so the minimum over meeting nodes is the same float. The
// differential suite in chbucket_test.go pins this per target.

// CHBuckets hold a target set indexed over a ContractionHierarchy for
// repeated one-to-many queries. Build once with TargetBuckets (targets as
// destinations, query with DistancesFrom) or SourceBuckets (targets as
// sources, query with DistancesTo); queries are safe for concurrent use.
type CHBuckets struct {
	ch      *ContractionHierarchy
	n       int  // number of targets (slots in the output slice)
	sources bool // built by SourceBuckets: only DistancesTo is valid
	buckets [][]bucketEntry
}

type bucketEntry struct {
	target int32   // index into the target slice the buckets were built from
	weight float64 // settled target-side upward distance at this node
}

// TargetBuckets indexes targets as *destinations*: DistancesFrom(src)
// returns the shortest-path weight src→targets[i] for every i. Invalid
// target IDs stay unreachable (+Inf); duplicates each get their own slot.
func (ch *ContractionHierarchy) TargetBuckets(targets []NodeID) *CHBuckets {
	return ch.buildBuckets(targets, false)
}

// SourceBuckets indexes targets as *sources*: DistancesTo(dst) returns the
// shortest-path weight targets[i]→dst for every i.
func (ch *ContractionHierarchy) SourceBuckets(targets []NodeID) *CHBuckets {
	return ch.buildBuckets(targets, true)
}

func (ch *ContractionHierarchy) buildBuckets(targets []NodeID, sources bool) *CHBuckets {
	b := &CHBuckets{
		ch:      ch,
		n:       len(targets),
		sources: sources,
		buckets: make([][]bucketEntry, len(ch.order)),
	}
	// Targets as destinations meet the anchor's forward (up) sweep with
	// their backward (down) search space, and vice versa.
	adj := ch.down
	if sources {
		adj = ch.up
	}
	for i, t := range targets {
		if int(t) < 0 || int(t) >= len(ch.order) {
			continue
		}
		b.scatter(int32(i), t, adj)
	}
	return b
}

// scatter runs one upward search from target t and appends its settled
// distances to the buckets along the way.
func (b *CHBuckets) scatter(idx int32, t NodeID, adj [][]chEdge) {
	st := b.ch.g.acquireState()
	defer st.release()
	st.dist[t] = 0
	st.seen[t] = st.stamp
	st.pq.push(t, 0)
	for len(st.pq.items) > 0 {
		cur := st.pq.pop()
		if cur.prio > st.dist[cur.node] {
			continue
		}
		b.buckets[cur.node] = append(b.buckets[cur.node], bucketEntry{target: idx, weight: cur.prio})
		for _, e := range adj[cur.node] {
			nd := cur.prio + e.weight
			if st.seen[e.to] != st.stamp || nd < st.dist[e.to] {
				st.dist[e.to] = nd
				st.seen[e.to] = st.stamp
				st.pq.push(e.to, nd)
			}
		}
	}
}

// DistancesFrom answers src→targets[i] for every target of a TargetBuckets
// build with one upward sweep. The result is written into out when it has
// capacity (so steady-state callers allocate nothing) and returned; +Inf
// marks unreachable pairs.
func (b *CHBuckets) DistancesFrom(src NodeID, out []float64) []float64 {
	if b.sources {
		panic("roadnet: DistancesFrom on buckets built with SourceBuckets")
	}
	return b.sweep(src, b.ch.up, out)
}

// DistancesTo answers targets[i]→dst for every target of a SourceBuckets
// build with one downward sweep.
func (b *CHBuckets) DistancesTo(dst NodeID, out []float64) []float64 {
	if !b.sources {
		panic("roadnet: DistancesTo on buckets built with TargetBuckets")
	}
	return b.sweep(dst, b.ch.down, out)
}

func (b *CHBuckets) sweep(origin NodeID, adj [][]chEdge, out []float64) []float64 {
	if cap(out) < b.n {
		out = make([]float64, b.n)
	}
	out = out[:b.n]
	for i := range out {
		out[i] = math.Inf(1)
	}
	if int(origin) < 0 || int(origin) >= len(b.ch.order) {
		return out
	}
	st := b.ch.g.acquireState()
	defer st.release()
	st.dist[origin] = 0
	st.seen[origin] = st.stamp
	st.pq.push(origin, 0)
	for len(st.pq.items) > 0 {
		cur := st.pq.pop()
		if cur.prio > st.dist[cur.node] {
			continue
		}
		for _, e := range b.buckets[cur.node] {
			if d := cur.prio + e.weight; d < out[e.target] {
				out[e.target] = d
			}
		}
		for _, e := range adj[cur.node] {
			nd := cur.prio + e.weight
			if st.seen[e.to] != st.stamp || nd < st.dist[e.to] {
				st.dist[e.to] = nd
				st.seen[e.to] = st.stamp
				st.pq.push(e.to, nd)
			}
		}
	}
	return out
}

package wire

import (
	"encoding/binary"
	"math"
	"time"

	"ecocharge/internal/charger"
)

// Append-style encoders: every function appends one message (or one field)
// to b and returns the grown slice, so callers encode into pooled buffers
// with zero steady-state allocations. No reflection anywhere — each struct
// is written field by field in declaration order.

func appendHeader(b []byte, kind byte) []byte {
	return append(b, magic, version, kind)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendI64(b []byte, v int64) []byte {
	return appendU64(b, uint64(v))
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendVarint zigzag-encodes a signed integer so small magnitudes of
// either sign stay short.
func appendVarint(b []byte, v int64) []byte {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return appendUvarint(b, uv)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendTime encodes the wall clock as seconds + nanoseconds + zone offset
// (16 bytes). Carrying the offset — not just an instant — makes the decoded
// time render the same RFC 3339 string the original did, which is what the
// JSON-equivalence contract needs; the monotonic reading is dropped exactly
// like encoding/json drops it.
func appendTime(b []byte, t time.Time) []byte {
	_, off := t.Zone()
	b = appendI64(b, t.Unix())
	b = appendU32(b, uint32(t.Nanosecond()))
	return appendU32(b, uint32(int32(off)))
}

func appendInterval(b []byte, iv IntervalJSON) []byte {
	b = appendF64(b, iv.Min)
	return appendF64(b, iv.Max)
}

// AppendOfferingRequest appends the binary form of a Mode 2 request.
func AppendOfferingRequest(b []byte, req *OfferingRequest) []byte {
	b = appendHeader(b, kindOfferingRequest)
	b = appendF64(b, req.Lat)
	b = appendF64(b, req.Lon)
	b = appendVarint(b, int64(req.K))
	b = appendF64(b, req.RadiusM)
	b = appendF64(b, req.Weights.L)
	b = appendF64(b, req.Weights.A)
	b = appendF64(b, req.Weights.D)
	b = appendTime(b, req.Now)
	return appendTime(b, req.ETA)
}

func appendEntry(b []byte, e *OfferingEntry) []byte {
	b = appendI64(b, e.ChargerID)
	b = appendF64(b, e.Lat)
	b = appendF64(b, e.Lon)
	b = appendF64(b, e.RateKW)
	b = appendInterval(b, e.SC)
	b = appendInterval(b, e.L)
	b = appendInterval(b, e.A)
	b = appendInterval(b, e.D)
	b = appendTime(b, e.ETA)
	return append(b, e.Degraded)
}

// AppendOfferingResponse appends the binary form of a Mode 2 response. A
// nil entry slice is distinguished from an empty one so the re-encoded JSON
// stays byte-identical ("entries":null vs []).
func AppendOfferingResponse(b []byte, resp *OfferingResponse) []byte {
	b = appendHeader(b, kindOfferingResponse)
	if resp.Entries == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = appendUvarint(b, uint64(len(resp.Entries)))
		for i := range resp.Entries {
			b = appendEntry(b, &resp.Entries[i])
		}
	}
	b = appendTime(b, resp.GeneratedAt)
	return appendBool(b, resp.Cached)
}

func appendCharger(b []byte, c *charger.Charger) []byte {
	b = appendI64(b, c.ID)
	b = appendF64(b, c.P.Lat)
	b = appendF64(b, c.P.Lon)
	b = appendU32(b, uint32(int32(c.Node)))
	// The rate travels as nominal kW and decodes through the same
	// nearest-class recovery the JSON codec uses, so both formats project
	// identically.
	b = appendF64(b, c.Rate.KW())
	b = appendF64(b, c.PanelKW)
	b = appendF64(b, c.WindKW)
	b = appendVarint(b, int64(c.Plugs))
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			b = appendF64(b, c.Timetable[d][h])
		}
	}
	return b
}

// AppendChargers appends the binary form of a charger list (the inventory
// and radius-query payloads).
func AppendChargers(b []byte, cs []charger.Charger) []byte {
	b = appendHeader(b, kindChargers)
	if cs == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendUvarint(b, uint64(len(cs)))
	for i := range cs {
		b = appendCharger(b, &cs[i])
	}
	return b
}

// AppendChargerRefs is AppendChargers over a pointer slice (the shape the
// radius query returns); the encoded bytes are identical.
func AppendChargerRefs(b []byte, cs []*charger.Charger) []byte {
	b = appendHeader(b, kindChargers)
	if cs == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendUvarint(b, uint64(len(cs)))
	for _, c := range cs {
		b = appendCharger(b, c)
	}
	return b
}

// AppendWeather appends the binary form of a production-forecast lookup.
func AppendWeather(b []byte, resp *WeatherResponse) []byte {
	b = appendHeader(b, kindWeather)
	b = appendI64(b, resp.ChargerID)
	b = appendTime(b, resp.At)
	return appendInterval(b, resp.ProductionKW)
}

// AppendAvailability appends the binary form of an availability lookup.
func AppendAvailability(b []byte, resp *AvailabilityResponse) []byte {
	b = appendHeader(b, kindAvailability)
	b = appendI64(b, resp.ChargerID)
	b = appendTime(b, resp.At)
	return appendInterval(b, resp.Availability)
}

package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// PrintFigure writes measurements as the text equivalent of one paper
// figure: one row per (dataset, method/config) with SC% and F_t as
// mean ± stddev.
func PrintFigure(w io.Writer, title string, ms []Measurement) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// tabwriter buffers all writes; errors surface at the returned Flush.
	_, _ = fmt.Fprintln(tw, "dataset\tmethod\tconfig\tSC%\tFt(ms)\tqueries\tcache(h/m)")
	for _, m := range ms {
		cache := ""
		if m.CacheHits+m.CacheMiss > 0 {
			cache = fmt.Sprintf("%d/%d", m.CacheHits, m.CacheMiss)
		}
		_, _ = fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f ± %.1f\t%.2f ± %.2f\t%d\t%s\n",
			m.Dataset, m.Method, m.Config,
			m.SCPercent.Mean, m.SCPercent.StdDev,
			m.FtMillis.Mean, m.FtMillis.StdDev,
			m.Queries, cache)
	}
	return tw.Flush()
}

// PrintAblation writes Fig. 9 measurements including the achieved objective
// shares.
func PrintAblation(w io.Writer, title string, ms []Measurement) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// tabwriter buffers all writes; errors surface at the returned Flush.
	_, _ = fmt.Fprintln(tw, "dataset\tfunction\tSC%\tw1(L)%\tw2(A)%\tw3(D)%\tFt(ms)")
	for _, m := range ms {
		_, _ = fmt.Fprintf(tw, "%s\t%s\t%.1f ± %.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			m.Dataset, m.Method,
			m.SCPercent.Mean, m.SCPercent.StdDev,
			m.Shares.L*100, m.Shares.A*100, m.Shares.D*100,
			m.FtMillis.Mean)
	}
	return tw.Flush()
}

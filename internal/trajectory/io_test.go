package trajectory

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

func TestTrajectoryCSVRoundTrip(t *testing.T) {
	g := smallGraph(t)
	trips := genTrips(t, g, 3)
	var trs []Trajectory
	for _, trip := range trips {
		trs = append(trs, Sample(g, trip, 20*time.Second))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trs); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back) != len(trs) {
		t.Fatalf("round trip %d vs %d trajectories", len(back), len(trs))
	}
	for i := range back {
		if back[i].ID != trs[i].ID || len(back[i].Points) != len(trs[i].Points) {
			t.Fatalf("trajectory %d shape mismatch", i)
		}
		for j := range back[i].Points {
			if !back[i].Points[j].T.Equal(trs[i].Points[j].T) {
				t.Fatalf("trajectory %d point %d time mismatch", i, j)
			}
			if geo.Distance(back[i].Points[j].P, trs[i].Points[j].P) > 0.2 {
				t.Fatalf("trajectory %d point %d drifted", i, j)
			}
		}
	}
}

func TestReadCSVMalformedTrajectories(t *testing.T) {
	cases := map[string]string{
		"bad header": "x,time,lon,lat\n",
		"bad id":     "id,time,lon,lat\nxx,2024-06-18T09:00:00Z,8.0,53.0\n",
		"bad time":   "id,time,lon,lat\n1,yesterday,8.0,53.0\n",
		"bad lat":    "id,time,lon,lat\n1,2024-06-18T09:00:00Z,8.0,abc\n",
		"lat range":  "id,time,lon,lat\n1,2024-06-18T09:00:00Z,8.0,95\n",
		"short row":  "id,time,lon,lat\n1,2024-06-18T09:00:00Z\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}

func TestReadCSVSortsOutOfOrderSamples(t *testing.T) {
	data := "id,time,lon,lat\n" +
		"1,2024-06-18T09:02:00Z,8.002,53.002\n" +
		"1,2024-06-18T09:00:00Z,8.000,53.000\n" +
		"1,2024-06-18T09:01:00Z,8.001,53.001\n"
	trs, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || len(trs[0].Points) != 3 {
		t.Fatalf("parsed %+v", trs)
	}
	for i := 1; i < 3; i++ {
		if trs[0].Points[i].T.Before(trs[0].Points[i-1].T) {
			t.Fatal("samples not sorted by time")
		}
	}
}

func TestMapMatchRecoversTrip(t *testing.T) {
	g := smallGraph(t)
	orig := genTrips(t, g, 1)[0]
	tr := Sample(g, orig, 30*time.Second)
	trips := MapMatch(g, tr, MatchConfig{})
	if len(trips) != 1 {
		t.Fatalf("map matching split into %d trips, want 1", len(trips))
	}
	got := trips[0]
	// Same endpoints.
	if got.Path.Nodes[0] != orig.Path.Nodes[0] {
		t.Errorf("start node %d vs %d", got.Path.Nodes[0], orig.Path.Nodes[0])
	}
	if got.Path.Nodes[len(got.Path.Nodes)-1] != orig.Path.Nodes[len(orig.Path.Nodes)-1] {
		t.Errorf("end node mismatch")
	}
	// Length within 15% of the original (matching may shortcut slightly).
	ratio := got.Path.Weight / orig.Path.Weight
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("matched length ratio %.2f", ratio)
	}
	// Consecutive nodes of the matched path are actually connected.
	for i := 1; i < len(got.Path.Nodes); i++ {
		connected := false
		g.OutEdges(got.Path.Nodes[i-1], func(e roadnet.Edge) {
			if e.To == got.Path.Nodes[i] {
				connected = true
			}
		})
		if !connected {
			t.Fatalf("matched path has non-edge hop at %d", i)
		}
	}
}

func TestMapMatchSplitsOnTimeGap(t *testing.T) {
	g := smallGraph(t)
	trips := genTrips(t, g, 2)
	a := Sample(g, trips[0], 30*time.Second)
	b := Sample(g, trips[1], 30*time.Second)
	// Concatenate with a 2-hour gap: taxi parked between rides.
	merged := Trajectory{ID: 9}
	merged.Points = append(merged.Points, a.Points...)
	offset := a.Points[len(a.Points)-1].T.Add(2 * time.Hour)
	for i, p := range b.Points {
		p.T = offset.Add(time.Duration(i) * 30 * time.Second)
		merged.Points = append(merged.Points, p)
	}
	got := MapMatch(g, merged, MatchConfig{MaxGap: 10 * time.Minute})
	if len(got) != 2 {
		t.Fatalf("gap did not split: got %d trips", len(got))
	}
	if got[0].ID == got[1].ID {
		t.Error("split trips share an ID")
	}
	if !got[1].Depart.After(got[0].Depart) {
		t.Error("second trip departs before first")
	}
}

func TestMapMatchSkipsOutliers(t *testing.T) {
	g := smallGraph(t)
	orig := genTrips(t, g, 1)[0]
	tr := Sample(g, orig, 30*time.Second)
	// Inject a GPS spike far outside the network midway.
	spike := TimedPoint{P: geo.Point{Lat: 60, Lon: 20}, T: tr.Points[len(tr.Points)/2].T.Add(time.Second)}
	pts := append([]TimedPoint{}, tr.Points[:len(tr.Points)/2]...)
	pts = append(pts, spike)
	pts = append(pts, tr.Points[len(tr.Points)/2:]...)
	tr.Points = pts
	got := MapMatch(g, tr, MatchConfig{})
	if len(got) != 1 {
		t.Fatalf("outlier broke matching: %d trips", len(got))
	}
}

func TestMapMatchDegenerate(t *testing.T) {
	g := smallGraph(t)
	if got := MapMatch(g, Trajectory{}, MatchConfig{}); got != nil {
		t.Errorf("empty trajectory matched: %v", got)
	}
	// A single point cannot form a trip.
	one := Trajectory{ID: 1, Points: []TimedPoint{{P: g.Node(0).P, T: t0}}}
	if got := MapMatch(g, one, MatchConfig{}); got != nil {
		t.Errorf("single-point trajectory matched: %v", got)
	}
	// All points snapped to the same node: no movement, no trip.
	same := Trajectory{ID: 2, Points: []TimedPoint{
		{P: g.Node(5).P, T: t0},
		{P: g.Node(5).P, T: t0.Add(time.Minute)},
	}}
	if got := MapMatch(g, same, MatchConfig{}); got != nil {
		t.Errorf("stationary trajectory matched: %v", got)
	}
}

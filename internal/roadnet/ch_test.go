package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"ecocharge/internal/geo"
)

func chGraph(t testing.TB) *Graph {
	t.Helper()
	return GenerateUrban(UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 5, HeightKM: 4,
		SpacingM: 500, RemoveFrac: 0.1, JitterFrac: 0.25, ArterialEach: 3, Seed: 17,
	})
}

func TestCHMatchesDijkstraExactly(t *testing.T) {
	g := chGraph(t)
	ch := BuildCH(g, DistanceWeight)
	r := rand.New(rand.NewSource(18))
	for trial := 0; trial < 150; trial++ {
		src := NodeID(r.Intn(g.NumNodes()))
		dst := NodeID(r.Intn(g.NumNodes()))
		want := g.ShortestDistance(src, dst, DistanceWeight)
		got := ch.Query(src, dst)
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			t.Fatalf("%d->%d: reachability disagrees (dij %v, ch %v)", src, dst, want, got)
		}
		if !math.IsInf(want, 1) && math.Abs(want-got) > 1e-6 {
			t.Fatalf("%d->%d: CH %v vs Dijkstra %v", src, dst, got, want)
		}
	}
}

func TestCHTimeWeight(t *testing.T) {
	g := chGraph(t)
	ch := BuildCH(g, TimeWeight)
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		src := NodeID(r.Intn(g.NumNodes()))
		dst := NodeID(r.Intn(g.NumNodes()))
		want := g.ShortestDistance(src, dst, TimeWeight)
		got := ch.Query(src, dst)
		if !math.IsInf(want, 1) && math.Abs(want-got) > 1e-6 {
			t.Fatalf("%d->%d: CH %v vs Dijkstra %v", src, dst, got, want)
		}
	}
}

func TestCHEdgeCases(t *testing.T) {
	g := chGraph(t)
	ch := BuildCH(g, DistanceWeight)
	if got := ch.Query(3, 3); got != 0 {
		t.Errorf("self query = %v", got)
	}
	if got := ch.Query(-1, 3); !math.IsInf(got, 1) {
		t.Errorf("invalid src = %v", got)
	}
	if got := ch.Query(3, NodeID(g.NumNodes())); !math.IsInf(got, 1) {
		t.Errorf("invalid dst = %v", got)
	}
}

func TestCHDisconnected(t *testing.T) {
	g := NewGraph(4, 2)
	for i := 0; i < 4; i++ {
		g.AddNode(geo.Point{Lat: 53 + float64(i)*0.01, Lon: 8})
	}
	g.AddBidirectional(0, 1, 100, ClassLocal)
	g.AddBidirectional(2, 3, 100, ClassLocal)
	g.Freeze()
	ch := BuildCH(g, DistanceWeight)
	if got := ch.Query(0, 1); got != 100 {
		t.Errorf("connected pair = %v, want 100", got)
	}
	if got := ch.Query(0, 3); !math.IsInf(got, 1) {
		t.Errorf("disconnected pair = %v, want +Inf", got)
	}
}

func TestCHOneWay(t *testing.T) {
	g := NewGraph(3, 2)
	a := g.AddNode(geo.Point{Lat: 53, Lon: 8})
	b := g.AddNode(geo.Point{Lat: 53, Lon: 8.01})
	c := g.AddNode(geo.Point{Lat: 53, Lon: 8.02})
	g.AddEdge(a, b, 100, ClassLocal)
	g.AddEdge(b, c, 100, ClassLocal)
	g.Freeze()
	ch := BuildCH(g, DistanceWeight)
	if got := ch.Query(a, c); got != 200 {
		t.Errorf("forward = %v, want 200", got)
	}
	if got := ch.Query(c, a); !math.IsInf(got, 1) {
		t.Errorf("backward over one-way = %v, want +Inf", got)
	}
}

func BenchmarkCHQueryVsDijkstra(b *testing.B) {
	g := GenerateUrban(UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.08, JitterFrac: 0.2, ArterialEach: 4, Seed: 20,
	})
	ch := BuildCH(g, DistanceWeight)
	r := rand.New(rand.NewSource(21))
	pairs := make([][2]NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(r.Intn(g.NumNodes())), NodeID(r.Intn(g.NumNodes()))}
	}
	b.Run("ch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%64]
			ch.Query(p[0], p[1])
		}
	})
	b.Run("dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%64]
			g.ShortestDistance(p[0], p[1], DistanceWeight)
		}
	})
}

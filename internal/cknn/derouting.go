package cknn

import (
	"math"
	"time"

	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

// DeroutingMaps hold the network expansions that price a visit to any
// charger from one query point (Algorithm 1 lines 9–10): forward distances
// from the anchor and reverse distances back to the return node, each under
// the traffic model's lower and upper travel-time weights.
//
// Derouting is the *extra* travel the visit causes relative to staying on
// the route: derout(b) = t(anchor→b) + t(b→return) − t(anchor→return),
// which is zero for a charger on the route, matching the paper's "no
// derouting occurs" case.
type DeroutingMaps struct {
	fwdLo, fwdHi map[roadnet.NodeID]float64 // seconds from anchor
	retLo, retHi map[roadnet.NodeID]float64 // seconds to return node
	baseLo       float64                    // anchor→return under lower weights
	baseHi       float64                    // anchor→return under upper weights
}

// deroutingMaps runs the four bounded expansions. boundSec limits the
// search effort; pass math.Inf(1) for the exhaustive (brute-force) variant.
func (env *Env) deroutingMaps(q Query, boundSec float64) DeroutingMaps {
	lower, upper := env.Traffic.WeightFuncs(q.ETABase, q.Now)
	var d DeroutingMaps
	d.fwdLo = env.Graph.DistancesWithin(q.AnchorNode, lower, boundSec)
	d.fwdHi = env.Graph.DistancesWithin(q.AnchorNode, upper, boundSec)
	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	d.retLo = env.Graph.DistancesTo(ret, lower, boundSec)
	d.retHi = env.Graph.DistancesTo(ret, upper, boundSec)
	d.baseLo = lookup(d.fwdLo, ret, math.Inf(1))
	d.baseHi = lookup(d.fwdHi, ret, math.Inf(1))
	if math.IsInf(d.baseLo, 1) {
		// Return node unreachable within the bound: treat the on-route
		// baseline as zero so derouting reduces to the round-trip cost.
		d.baseLo, d.baseHi = 0, 0
	}
	return d
}

func lookup(m map[roadnet.NodeID]float64, id roadnet.NodeID, def float64) float64 {
	if v, ok := m[id]; ok {
		return v
	}
	return def
}

// deroutingMapsApprox is the cheaper variant EcoCharge uses on cache
// misses: one expansion per direction under the mid-traffic weights, with
// interval bounds derived by scaling every distance by the most optimistic
// and most pessimistic per-class multiplier ratios. This halves the
// Dijkstra work against the exact four-expansion computation at the cost
// of slightly wider (but still truth-covering, up to route divergence)
// intervals.
func (env *Env) deroutingMapsApprox(q Query, boundSec float64) DeroutingMaps {
	lower, upper := env.Traffic.WeightFuncs(q.ETABase, q.Now)
	mid := func(e roadnet.Edge) float64 { return (lower(e) + upper(e)) / 2 }

	// Global scaling band across road classes: lo/mid and hi/mid ratios of
	// a representative edge per class.
	loRatio, hiRatio := 1.0, 1.0
	for c := roadnet.RoadClass(0); c < 4; c++ {
		e := roadnet.Edge{Length: 1000, Class: c}
		m := mid(e)
		if m <= 0 {
			continue
		}
		if r := lower(e) / m; r < loRatio {
			loRatio = r
		}
		if r := upper(e) / m; r > hiRatio {
			hiRatio = r
		}
	}

	fwd := env.Graph.DistancesWithin(q.AnchorNode, mid, boundSec)
	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	rev := env.Graph.DistancesTo(ret, mid, boundSec)

	var d DeroutingMaps
	d.fwdLo = scaleMap(fwd, loRatio)
	d.fwdHi = scaleMap(fwd, hiRatio)
	d.retLo = scaleMap(rev, loRatio)
	d.retHi = scaleMap(rev, hiRatio)
	base := lookup(fwd, ret, math.Inf(1))
	if math.IsInf(base, 1) {
		d.baseLo, d.baseHi = 0, 0
	} else {
		d.baseLo, d.baseHi = base*loRatio, base*hiRatio
	}
	return d
}

func scaleMap(m map[roadnet.NodeID]float64, s float64) map[roadnet.NodeID]float64 {
	//ecolint:ignore floateq exact no-op fast path: callers pass ratio 1 literally
	if s == 1 {
		return m
	}
	out := make(map[roadnet.NodeID]float64, len(m))
	for k, v := range m {
		out[k] = v * s
	}
	return out
}

// Cost returns the derouting seconds interval for a charger at node n and
// whether the charger is reachable within the expansions' bound. The
// interval mixes bounds soundly: the optimistic derouting uses optimistic
// legs against the pessimistic baseline, and vice versa.
func (d DeroutingMaps) Cost(n roadnet.NodeID) (interval.I, bool) {
	fLo, ok1 := d.fwdLo[n]
	rLo, ok2 := d.retLo[n]
	if !ok1 || !ok2 {
		return interval.I{}, false
	}
	fHi := lookup(d.fwdHi, n, fLo)
	rHi := lookup(d.retHi, n, rLo)
	lo := fLo + rLo - d.baseHi
	hi := fHi + rHi - d.baseLo
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return interval.New(lo, hi), true
}

// TravelTo returns the forward travel-time interval in seconds from the
// anchor to node n, used to derive the charger's ETA.
func (d DeroutingMaps) TravelTo(n roadnet.NodeID) (interval.I, bool) {
	lo, ok := d.fwdLo[n]
	if !ok {
		return interval.I{}, false
	}
	hi := lookup(d.fwdHi, n, lo)
	if hi < lo {
		hi = lo
	}
	return interval.New(lo, hi), true
}

// etaAt converts a mid travel estimate into the charger's ETA.
func etaAt(base time.Time, travel interval.I) time.Time {
	return base.Add(time.Duration(travel.Mid() * float64(time.Second)))
}

package wire

import (
	"encoding/json"
	"testing"

	"ecocharge/internal/charger"
)

// BenchmarkWireCodec pits the binary codec against encoding/json on the
// payloads the wire actually carries: a k=16 offering table and an 80-
// charger inventory. The binary side must hold 0 B/op in steady state.
func BenchmarkWireCodec(b *testing.B) {
	resp := sampleResponse(16)
	cs := sampleChargers(80)

	b.Run("encode-response/wire", func(b *testing.B) {
		buf := make([]byte, 0, 1<<16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendOfferingResponse(buf[:0], &resp)
		}
	})
	b.Run("encode-response/json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&resp); err != nil {
				b.Fatal(err)
			}
		}
	})

	encResp := AppendOfferingResponse(nil, &resp)
	jsonResp, err := json.Marshal(&resp)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode-response/wire", func(b *testing.B) {
		out := OfferingResponse{Entries: make([]OfferingEntry, 0, len(resp.Entries))}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := DecodeOfferingResponse(encResp, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-response/json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out OfferingResponse
			if err := json.Unmarshal(jsonResp, &out); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("encode-inventory/wire", func(b *testing.B) {
		buf := make([]byte, 0, 1<<20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendChargers(buf[:0], cs)
		}
	})
	b.Run("encode-inventory/json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(cs); err != nil {
				b.Fatal(err)
			}
		}
	})

	encCs := AppendChargers(nil, cs)
	jsonCs, err := json.Marshal(cs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode-inventory/wire", func(b *testing.B) {
		dst := make([]charger.Charger, 0, len(cs))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = DecodeChargers(encCs, dst)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-inventory/json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var dst []charger.Charger
			if err := json.Unmarshal(jsonCs, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Command eis runs the EcoCharge Information Server (Mode 2 of the paper's
// architecture): it assembles a dataset scenario and serves the JSON API on
// the given address.
//
// Example:
//
//	eis -addr :8080 -dataset Oldenburg
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"ecocharge/internal/eis"
	"ecocharge/internal/experiment"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataset = flag.String("dataset", "Oldenburg", "dataset profile: Oldenburg, California, T-drive, Geolife")
		seed    = flag.Int64("seed", 42, "scenario seed")
		ttl     = flag.Duration("cache-ttl", 5*time.Minute, "server-side dynamic cache TTL")
		cell    = flag.Float64("cache-cell", 2000, "server-side cache cell size in meters")
		workers = flag.Int("workers", 0, "ranking parallelism per request (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	handler, desc, err := newHandler(*dataset, *seed, *ttl, *cell, *workers, logger)
	if err != nil {
		logger.Fatalf("eis: %v", err)
	}
	logger.Printf("eis: serving %s on %s", desc, *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "eis:", err)
		os.Exit(1)
	}
}

// newHandler assembles the scenario and returns the EIS routes plus a
// human-readable description of what is being served.
func newHandler(dataset string, seed int64, ttl time.Duration, cellM float64, workers int, logger *log.Logger) (http.Handler, string, error) {
	// The EIS only needs the environment; trips are client business.
	sc, err := experiment.BuildScenario(dataset, 0.001, seed)
	if err != nil {
		return nil, "", fmt.Errorf("building scenario: %w", err)
	}
	srv := eis.NewServer(sc.Env, eis.ServerOptions{
		CacheTTL:   ttl,
		CacheCellM: cellM,
		Workers:    workers,
		Logger:     logger,
	})
	mw := &eis.Middleware{MaxInFlight: 256, Logger: logger}
	desc := fmt.Sprintf("%s (%d chargers, %d road nodes)",
		sc.Name, sc.Env.Chargers.Len(), sc.Graph.NumNodes())
	return mw.Wrap(srv.Handler()), desc, nil
}

// Package fixture exercises the intervalliteral analyzer.
package fixture

import "ecocharge/internal/interval"

// Bad builds a raw literal with swapped bounds: exactly the corruption the
// analyzer exists to catch.
func Bad(lo, hi float64) interval.I {
	return interval.I{Min: hi, Max: lo}
}

// BadPointer is flagged through the address operator too.
func BadPointer() *interval.I {
	return &interval.I{Min: 2, Max: 1}
}

// GoodZero uses the empty literal, the documented exact zero interval.
func GoodZero() interval.I { return interval.I{} }

// GoodNew goes through the checked constructor.
func GoodNew(lo, hi float64) interval.I { return interval.FromBounds(lo, hi) }

// Suppressed demonstrates the escape hatch.
func Suppressed() interval.I {
	//ecolint:ignore intervalliteral fixture for the suppression story
	return interval.I{Min: 0, Max: 1}
}

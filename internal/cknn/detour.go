package cknn

import (
	"fmt"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

// DetourPlan is the concrete route change of committing to an Offering
// Table entry: the paper's client "could change the initial route to
// accommodate a visit to an offering charging station … with the objective
// of finding a more efficient overall route (current location to charger,
// and charger to destination)" (§IV.A).
type DetourPlan struct {
	Charger *charger.Charger
	// ToCharger is the route from the commitment point to the charger
	// under optimistic traffic; FromCharger the continuation to the trip's
	// destination under pessimistic traffic (the conservative planning
	// bound).
	ToCharger   roadnet.Path
	FromCharger roadnet.Path
	// ExtraSeconds is the interval of extra travel time versus staying on
	// the original route from the commitment point.
	ExtraSecondsMin float64
	ExtraSecondsMax float64
	// ArriveAt is the estimated arrival at the charger.
	ArriveAt time.Time
}

// PlanDetour builds the route change for committing to entry at the given
// trip segment. It returns an error when the charger or the destination is
// unreachable from the commitment point.
func PlanDetour(env *Env, trip trajectory.Trip, seg trajectory.Segment, entry Entry) (DetourPlan, error) {
	if entry.Charger == nil {
		return DetourPlan{}, fmt.Errorf("cknn: entry has no charger")
	}
	dest := trip.Path.Nodes[len(trip.Path.Nodes)-1]
	lower, upper := env.Traffic.WeightFuncs(seg.ETA, trip.Depart)

	toCharger, ok := env.Graph.BidirectionalShortestPath(seg.AnchorNode, entry.Charger.Node, lower)
	if !ok {
		return DetourPlan{}, fmt.Errorf("cknn: charger %d unreachable from segment %d", entry.Charger.ID, seg.Index)
	}
	fromCharger, ok := env.Graph.BidirectionalShortestPath(entry.Charger.Node, dest, upper)
	if !ok {
		return DetourPlan{}, fmt.Errorf("cknn: destination unreachable from charger %d", entry.Charger.ID)
	}
	// Baseline: staying on the route from the anchor to the destination.
	baseLo, okLo := env.Graph.BidirectionalShortestPath(seg.AnchorNode, dest, lower)
	baseHi, okHi := env.Graph.BidirectionalShortestPath(seg.AnchorNode, dest, upper)
	if !okLo || !okHi {
		return DetourPlan{}, fmt.Errorf("cknn: destination unreachable from segment %d", seg.Index)
	}

	toLo := toCharger.Weight
	toHi := routeWeight(env.Graph, toCharger.Nodes, upper)
	fromLo := routeWeight(env.Graph, fromCharger.Nodes, lower)
	fromHi := fromCharger.Weight

	extraMin := toLo + fromLo - baseHi.Weight
	if extraMin < 0 {
		extraMin = 0
	}
	extraMax := toHi + fromHi - baseLo.Weight
	if extraMax < extraMin {
		extraMax = extraMin
	}
	return DetourPlan{
		Charger:         entry.Charger,
		ToCharger:       toCharger,
		FromCharger:     fromCharger,
		ExtraSecondsMin: extraMin,
		ExtraSecondsMax: extraMax,
		ArriveAt:        seg.ETA.Add(secondsDur(toLo)),
	}, nil
}

// routeWeight prices a fixed node sequence under a weight function (the
// route was chosen under another metric; this re-costs it).
func routeWeight(g *roadnet.Graph, nodes []roadnet.NodeID, w roadnet.WeightFunc) float64 {
	var total float64
	for i := 1; i < len(nodes); i++ {
		found := false
		g.OutEdges(nodes[i-1], func(e roadnet.Edge) {
			if e.To == nodes[i] && !found {
				total += w(e)
				found = true
			}
		})
	}
	return total
}

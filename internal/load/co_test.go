package load

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"ecocharge/internal/cknn"
)

// stallGate blocks every request until `stall` after the first arrival,
// then serves normally — an artificial server pause (GC, failover, lock
// convoy) of known length. The wait observes the request context.
type stallGate struct {
	stall time.Duration
	once  sync.Once
	open  chan struct{}
}

func newStallGate(stall time.Duration) *stallGate {
	return &stallGate{stall: stall, open: make(chan struct{})}
}

func (g *stallGate) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.once.Do(func() {
			time.AfterFunc(g.stall, func() { close(g.open) })
		})
		select {
		case <-g.open:
		case <-r.Context().Done():
			return
		}
		next.ServeHTTP(w, r)
	})
}

func stalledShard(t *testing.T, env *cknn.Env, stall time.Duration) string {
	t.Helper()
	ip, err := StartInproc(env, InprocOptions{
		Shards: 1,
		Clock:  func() time.Time { return fixedNow },
		Wrap:   newStallGate(stall).wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ip.Close)
	return ip.ShardURLs[0]
}

// TestCoordinatedOmissionSafety is the proof behind the harness's headline
// claim. A server stalls completely for 800 ms. The open-loop run measures
// every request from its *intended* arrival, so the requests that queued
// behind the stall record their full wait: the recorded p999 must reflect
// the stall. The closed-loop control run measures from actual send with a
// small worker pool — only `workers` requests ever experience the stall,
// the thousands issued after it are fast, and the recorded p999 collapses
// to service time. That gap IS coordinated omission: the closed-loop
// number silently drops the latency its own back-pressure created.
func TestCoordinatedOmissionSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stall differential")
	}
	env := testEnv(t)
	const stall = 800 * time.Millisecond

	// Open loop: 400 arrivals over 1 s, all scheduled before or around the
	// stall's end, every queued wait measured.
	openURL := stalledShard(t, env, stall)
	openRunner, err := NewRunner(Options{
		BaseURL: openURL, Plane: PlaneJSON, K: 5, Now: fixedNow,
		Timeout: 10 * time.Second, Workers: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	openSched, err := Constant(400, 400)
	if err != nil {
		t.Fatal(err)
	}
	openRes, err := openRunner.Run(context.Background(), testSessions(t, env, 23), openSched, 400)
	if err != nil {
		t.Fatal(err)
	}
	if openRes.Valid+openRes.Degraded != openRes.Offered {
		t.Fatalf("open-loop run not clean: %+v (first: %s)", openRes, openRes.FirstViolation)
	}

	// Closed-loop control on a fresh stalled server: same stall, 4
	// sequential request loops, 6000 requests — only ~4 of them see the
	// stall, so the quantiles dilute.
	closedURL := stalledShard(t, env, stall)
	closedRunner, err := NewRunner(Options{
		BaseURL: closedURL, Plane: PlaneJSON, K: 5, Now: fixedNow,
		Timeout: 10 * time.Second, Workers: 4, ClosedLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	closedSched, err := Constant(400, 6000)
	if err != nil {
		t.Fatal(err)
	}
	closedRes, err := closedRunner.Run(context.Background(), testSessions(t, env, 23), closedSched, 400)
	if err != nil {
		t.Fatal(err)
	}
	if closedRes.Valid+closedRes.Degraded != closedRes.Offered {
		t.Fatalf("closed-loop run not clean: %+v (first: %s)", closedRes, closedRes.FirstViolation)
	}

	openP999 := openRes.Latency.Quantile(0.999)
	closedP999 := closedRes.Latency.Quantile(0.999)
	t.Logf("open-loop p50=%v p999=%v; closed-loop p50=%v p999=%v",
		openRes.Latency.Quantile(0.5), openP999, closedRes.Latency.Quantile(0.5), closedP999)

	// Open loop saw the queue: requests intended early in the stall waited
	// most of it out and their wait is on the record.
	if openP999 < stall/2 {
		t.Fatalf("open-loop p999 %v does not reflect the %v stall: queued intended-start latency went unrecorded", openP999, stall)
	}
	// Closed loop hid it: the control's p999 collapses to service time.
	if closedP999 > openP999/4 {
		t.Fatalf("closed-loop p999 %v too close to open-loop %v — the control failed to demonstrate coordinated omission", closedP999, openP999)
	}
	if closedRes.MaxLat < stall/2 {
		t.Fatalf("closed-loop max %v never saw the stall — the gate did not engage", closedRes.MaxLat)
	}
}

package eis

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfter covers both RFC 7231 header forms — delay-seconds and
// HTTP-date — plus the cap and the garbage cases.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
		ok   bool
	}{
		{"empty", "", 0, false},
		{"seconds", "7", 7 * time.Second, true},
		{"zero seconds", "0", 0, false},
		{"negative seconds", "-3", 0, false},
		{"seconds capped", "3600", maxRetryAfter, true},
		{"http date", now.Add(9 * time.Second).UTC().Format(http.TimeFormat), 9 * time.Second, true},
		{"http date capped", now.Add(10 * time.Minute).UTC().Format(http.TimeFormat), maxRetryAfter, true},
		{"http date past", now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0, false},
		{"rfc850 date", now.Add(12 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 12 * time.Second, true},
		{"asctime date", now.Add(5 * time.Second).UTC().Format(time.ANSIC), 5 * time.Second, true},
		{"garbage", "soon", 0, false},
		{"float seconds", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseRetryAfter(tc.v, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.v, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestClientHonorsHTTPDateRetryAfter drives the retry loop against a server
// answering 503 with an HTTP-date Retry-After and asserts the recorded retry
// delay matches the date (capped), which the old integer-only parser ignored.
func TestClientHonorsHTTPDateRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", now.Add(4*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"at":"2026-08-08T12:00:00Z","multiplier":{}}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := NewClientOpts(srv.URL, ClientOptions{
		HTTPClient: srv.Client(),
		MaxRetries: 2,
		Clock:      func() time.Time { return now },
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := c.Traffic(context.Background(), now); err != nil {
		t.Fatalf("Traffic after 503: %v", err)
	}
	if hits != 2 {
		t.Fatalf("server saw %d requests, want 2", hits)
	}
	if len(slept) != 1 || slept[0] != 4*time.Second {
		t.Fatalf("retry delays %v, want [4s] from the HTTP-date header", slept)
	}
}

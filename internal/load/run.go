package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ecocharge/internal/eis"
	"ecocharge/internal/obs"
	"ecocharge/internal/wire"
)

// Plane selects the interchange format the runner drives.
type Plane string

const (
	PlaneJSON Plane = "json"
	PlaneWire Plane = "wire"
)

// Options configure a Runner.
type Options struct {
	// BaseURL of the target: a gateway or a single EIS.
	BaseURL string
	// Plane selects JSON or binary wire bodies (both directions).
	Plane Plane
	// K and RadiusM parameterize every offering query. Zero selects the
	// server defaults (k=3, 50 km).
	K       int
	RadiusM float64
	// Weights of the SC score; zero selects the server's equal weights.
	Weights wire.WeightsJSON
	// Now is stamped into requests so estimates evaluate at the scenario's
	// time base instead of the server wall clock. Zero lets the server
	// clock each request.
	Now time.Time
	// Timeout is the per-request deadline. 0 selects 10 s. The overload
	// contract asserts no response is observed beyond it.
	Timeout time.Duration
	// Workers bounds concurrent in-flight requests. 0 selects 64. The
	// open-loop schedule is unaffected — when all workers are busy,
	// arrivals queue with their intended timestamps and the wait is
	// measured, not skipped.
	Workers int
	// ClosedLoop switches the control mode used by the coordinated-
	// omission differential test: Workers sequential request loops,
	// latency measured from actual send. A stalled server then stops the
	// offered load itself, which is exactly the blind spot open-loop
	// measurement exists to avoid.
	ClosedLoop bool
	// HTTPClient performs the exchanges; nil selects a client on
	// eis.DefaultTransport tuned for Workers connections.
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.Plane == "" {
		o.Plane = PlaneJSON
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 64
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{
			Timeout:   o.Timeout,
			Transport: eis.DefaultTransport(o.Workers, o.Plane == PlaneWire),
		}
	}
	return o
}

// Result is the accounting of one run (one rate step).
type Result struct {
	Plane  Plane
	RateHz float64 // nominal offered rate
	Mode   string  // "open" or "closed"

	Offered int // arrivals scheduled
	Sent    int // requests actually issued (== Offered unless canceled)

	Valid    int // tabletest-valid, non-degraded 200s — the goodput bucket
	Degraded int // tabletest-valid 200s carrying a degraded marker
	Shed     int // 503 with parseable Retry-After
	Invalid  int // contract violations: corrupt/misordered 200s, bad 503s
	Errors   int // transport errors, timeouts, unexpected statuses

	Elapsed time.Duration // first intended arrival to last completion
	MaxLat  time.Duration // slowest single observation
	Latency *obs.LogHistogram

	// FirstViolation samples the first Invalid/Error explanation so sweep
	// reports can say *what* broke at the knee.
	FirstViolation string
}

// Goodput is the rate of valid, non-degraded answers per wall second.
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Valid) / r.Elapsed.Seconds()
}

// ShedRate is the fraction of issued requests answered with a 503.
func (r Result) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// Runner drives offering queries against one target on one plane.
type Runner struct {
	opts Options
}

// NewRunner validates the options.
func NewRunner(opts Options) (*Runner, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL required")
	}
	if opts.Plane != "" && opts.Plane != PlaneJSON && opts.Plane != PlaneWire {
		return nil, fmt.Errorf("load: unknown plane %q", opts.Plane)
	}
	return &Runner{opts: opts.withDefaults()}, nil
}

// event is one scheduled arrival: the query and the time it was *supposed*
// to start. Latency is measured against intended, never against the actual
// send — that difference is the coordinated-omission safety.
type event struct {
	intended time.Time
	q        Query
}

// Run executes one rate step: it paces the schedule's arrivals from a
// single goroutine into a fully-buffered channel (the pacer can never be
// back-pressured by a slow server, preserving the open loop) and completes
// them on a bounded sender pool. It returns when every arrival completed
// or ctx is canceled.
func (r *Runner) Run(ctx context.Context, src *Sessions, sched Schedule, rateHz float64) (Result, error) {
	if len(sched) == 0 {
		return Result{}, fmt.Errorf("load: empty schedule")
	}
	res := Result{Plane: r.opts.Plane, RateHz: rateHz, Offered: len(sched), Mode: "open"}
	if r.opts.ClosedLoop {
		res.Mode = "closed"
	}

	events := make(chan event, len(sched))
	var (
		counts    [outcomeCount]atomic.Int64
		sent      atomic.Int64
		maxLat    atomic.Int64
		violation atomic.Value // string
	)
	hist := obs.NewLogHistogram()

	var wg sync.WaitGroup
	for w := 0; w < r.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range events {
				if ctx.Err() != nil {
					continue // drain without sending; Sent stays honest
				}
				sent.Add(1)
				lat, out, err := r.send(ctx, ev)
				hist.Observe(lat)
				counts[out].Add(1)
				for {
					cur := maxLat.Load()
					if int64(lat) <= cur || maxLat.CompareAndSwap(cur, int64(lat)) {
						break
					}
				}
				if err != nil {
					violation.CompareAndSwap(nil, fmt.Sprintf("%s: %v", out, err))
				}
			}
		}()
	}

	start := time.Now()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	var pacerErr error
pace:
	for _, off := range sched {
		q, err := src.Next()
		if err != nil {
			pacerErr = err
			break
		}
		target := start.Add(off)
		if !r.opts.ClosedLoop {
			if d := time.Until(target); d > 0 {
				timer.Reset(d)
				select {
				case <-ctx.Done():
					pacerErr = ctx.Err()
					break pace
				case <-timer.C:
				}
			}
		}
		events <- event{intended: target, q: q}
	}
	close(events)
	wg.Wait()

	res.Sent = int(sent.Load())
	res.Valid = int(counts[OutcomeValid].Load())
	res.Degraded = int(counts[OutcomeDegraded].Load())
	res.Shed = int(counts[OutcomeShed].Load())
	res.Invalid = int(counts[OutcomeInvalid].Load())
	res.Errors = int(counts[OutcomeError].Load())
	res.Elapsed = time.Since(start)
	res.MaxLat = time.Duration(maxLat.Load())
	res.Latency = hist
	if v, ok := violation.Load().(string); ok {
		res.FirstViolation = v
	}
	return res, pacerErr
}

// send issues one offering request and classifies the exchange. The
// returned latency is measured from the intended arrival (open loop) or
// from the actual send (closed-loop control runs); either way the clock
// stops only after the full body is read, so a slow or truncated body
// cannot report fast.
func (r *Runner) send(ctx context.Context, ev event) (time.Duration, Outcome, error) {
	reqCtx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()

	oreq := wire.OfferingRequest{
		Lat: ev.q.Lat, Lon: ev.q.Lon,
		K: r.opts.K, RadiusM: r.opts.RadiusM, Weights: r.opts.Weights,
		Now: r.opts.Now, ETA: ev.q.ETA,
	}
	var body []byte
	contentType := "application/json"
	if r.opts.Plane == PlaneWire {
		body = wire.AppendOfferingRequest(nil, &oreq)
		contentType = wire.ContentType
	} else {
		var err error
		body, err = json.Marshal(oreq)
		if err != nil {
			return 0, OutcomeError, err
		}
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, r.opts.BaseURL+eis.APIVersion+"/offering", bytes.NewReader(body))
	if err != nil {
		return 0, OutcomeError, err
	}
	req.Header.Set("Content-Type", contentType)
	if r.opts.Plane == PlaneWire {
		req.Header.Set("Accept", wire.ContentType)
	}

	from := ev.intended
	if r.opts.ClosedLoop {
		from = time.Now()
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return time.Since(from), OutcomeError, err
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	_ = resp.Body.Close()
	lat := time.Since(from)
	if err != nil {
		return lat, OutcomeError, fmt.Errorf("reading body: %w", err)
	}
	out, cerr := Classify(resp.StatusCode, resp.Header, respBody, r.opts.K)
	return lat, out, cerr
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NakedGo reports `go` statements with no visible coordination: the spawned
// function neither touches a channel, nor calls into sync (WaitGroup,
// Mutex, Once, ...), nor receives a context.Context or channel through its
// arguments. Such goroutines have unmanaged lifetimes — in a long-running
// ranking service they leak, and in tests they race with cleanup. The check
// is a heuristic over what is syntactically in scope:
//
//   - for `go func() {...}()` the body is searched for channel operations
//     (send, receive, close, select, range-over-channel), calls on sync
//     types and context use;
//   - for any call form, arguments of channel, sync or context type count
//     as coordination.
//
// Coordinated-by-construction goroutines that the heuristic cannot see
// (e.g. a method that blocks on an internal channel) should be suppressed
// with //ecolint:ignore nakedgo and a reason.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "flags go statements without WaitGroup/channel/context coordination in scope",
	Run:  runNakedGo,
}

func runNakedGo(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtCoordinated(pass, g) {
				return true
			}
			pass.Reportf(g.Pos(), "naked goroutine: no WaitGroup, channel or context coordination in scope; its lifetime is unmanaged")
			return true
		})
	}
}

func goStmtCoordinated(pass *Pass, g *ast.GoStmt) bool {
	for _, arg := range g.Call.Args {
		if isCoordinationType(pass.TypeOf(arg)) {
			return true
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return bodyCoordinated(pass, lit.Body)
	}
	return false
}

// bodyCoordinated searches a function-literal body for evidence of
// coordination. Nested function literals are included: a goroutine whose
// deferred cleanup signals a channel is coordinated.
func bodyCoordinated(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if recv := pass.TypeOf(sel.X); typeFromPackage(recv, "sync") {
					found = true
				}
			}
		case *ast.Ident:
			if isCoordinationType(pass.TypeOf(n)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCoordinationType reports whether t is a channel, a sync type (or
// pointer to one) or a context.Context.
func isCoordinationType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if typeFromPackage(t, "sync") || typeFromPackage(t, "context") {
		return true
	}
	return false
}

// typeFromPackage reports whether t (or its pointee) is a named type
// declared in the package with the given import path.
func typeFromPackage(t types.Type, path string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}

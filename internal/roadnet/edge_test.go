package roadnet

import (
	"math"
	"strings"
	"testing"

	"ecocharge/internal/geo"
)

// ReadCSV must accept CRLF line endings (Windows-exported extracts).
func TestReadCSVCRLF(t *testing.T) {
	data := "id,lat,lon\r\n0,53.0,8.0\r\n1,53.1,8.1\r\n\r\nfrom,to,length_m,class\r\n0,1,100.0,0\r\n"
	g, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatalf("CRLF input rejected: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

// Self-loop edges must not break shortest paths (they are never useful but
// real extracts contain them).
func TestSelfLoopEdge(t *testing.T) {
	g := NewGraph(2, 3)
	a := g.AddNode(geo.Point{Lat: 53, Lon: 8})
	b := g.AddNode(geo.Point{Lat: 53, Lon: 8.01})
	g.AddEdge(a, a, 50, ClassLocal) // self loop
	g.AddBidirectional(a, b, 700, ClassLocal)
	g.Freeze()
	p, ok := g.ShortestPath(a, b, DistanceWeight)
	if !ok || p.Weight != 700 {
		t.Fatalf("self loop disturbed routing: %+v %v", p, ok)
	}
}

// Parallel edges: the cheaper one wins.
func TestParallelEdges(t *testing.T) {
	g := NewGraph(2, 2)
	a := g.AddNode(geo.Point{Lat: 53, Lon: 8})
	b := g.AddNode(geo.Point{Lat: 53, Lon: 8.01})
	g.AddEdge(a, b, 900, ClassLocal)
	g.AddEdge(a, b, 400, ClassArterial)
	g.Freeze()
	if d := g.ShortestDistance(a, b, DistanceWeight); d != 400 {
		t.Fatalf("parallel edge: %v, want 400", d)
	}
	ch := BuildCH(g, DistanceWeight)
	if d := ch.Query(a, b); d != 400 {
		t.Fatalf("CH parallel edge: %v, want 400", d)
	}
}

// Blocked edges (+Inf weight) are impassable but must not poison other
// routes.
func TestBlockedEdgeWeight(t *testing.T) {
	g := tinyGraph()
	blocked := func(e Edge) float64 {
		if e.From == 0 && e.To == 1 {
			return Blocked
		}
		return e.Length
	}
	// 0->1 direct is blocked; the detour through 3,4,5,2 still reaches 1.
	d := g.ShortestDistance(0, 1, blocked)
	if math.IsInf(d, 1) {
		t.Fatal("blocked edge disconnected an alternative route")
	}
	if d <= 1000 {
		t.Fatalf("blocked edge ignored: %v", d)
	}
}

// A* heuristic scale of 0 degenerates to Dijkstra and stays correct.
func TestAStarZeroHeuristic(t *testing.T) {
	g := tinyGraph()
	p1, ok1 := g.AStar(0, 5, DistanceWeight, 0)
	p2, ok2 := g.ShortestPath(0, 5, DistanceWeight)
	if ok1 != ok2 || math.Abs(p1.Weight-p2.Weight) > 1e-9 {
		t.Fatalf("A* with zero heuristic: %v/%v vs %v/%v", p1.Weight, ok1, p2.Weight, ok2)
	}
}

// NodesWithin on an anchored radius of zero returns at most the co-located
// node.
func TestNodesWithinZeroRadius(t *testing.T) {
	g := tinyGraph()
	got := g.NodesWithin(g.Node(3).P, 0)
	for _, id := range got {
		if geo.Distance(g.Node(id).P, g.Node(3).P) > 0 {
			t.Fatalf("zero radius returned distant node %d", id)
		}
	}
}

// LengthMeters of a single-node path is zero, and of an empty path too.
func TestLengthMetersDegenerate(t *testing.T) {
	g := tinyGraph()
	if l := g.LengthMeters(Path{Nodes: []NodeID{2}}); l != 0 {
		t.Errorf("single-node length %v", l)
	}
	if l := g.LengthMeters(Path{}); l != 0 {
		t.Errorf("empty length %v", l)
	}
}

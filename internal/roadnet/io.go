package roadnet

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ecocharge/internal/geo"
)

// The CSV interchange format mirrors what the paper's EIS ingests from
// OpenStreetMap extracts: one nodes table and one edges table. WriteCSV
// emits both into a single stream separated by a blank line; ReadCSV
// accepts that combined stream. The formats are:
//
//	nodes:  id,lat,lon
//	edges:  from,to,length_m,class
var (
	nodeHeader = []string{"id", "lat", "lon"}
	edgeHeader = []string{"from", "to", "length_m", "class"}
)

// WriteCSV serializes the graph (nodes table, blank line, edges table).
func (g *Graph) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(nodeHeader); err != nil {
		return err
	}
	for _, n := range g.nodes {
		rec := []string{
			strconv.Itoa(int(n.ID)),
			strconv.FormatFloat(n.P.Lat, 'f', 6, 64),
			strconv.FormatFloat(n.P.Lon, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if _, err := bw.WriteString("\n"); err != nil {
		return err
	}
	cw = csv.NewWriter(bw)
	if err := cw.Write(edgeHeader); err != nil {
		return err
	}
	for _, e := range g.edges {
		rec := []string{
			strconv.Itoa(int(e.From)),
			strconv.Itoa(int(e.To)),
			strconv.FormatFloat(e.Length, 'f', 1, 64),
			strconv.Itoa(int(e.Class)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses the combined nodes+edges stream written by WriteCSV and
// returns a frozen graph. Node IDs must be dense 0..n-1 in order (the
// interchange contract); anything else is an error naming the line.
func ReadCSV(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1 // validated manually per section

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("roadnet: reading nodes header: %w", err)
	}
	if !headerEqual(header, nodeHeader) {
		return nil, fmt.Errorf("roadnet: bad nodes header %v", header)
	}
	g := NewGraph(0, 0)
	line := 1
	// Nodes section ends at the blank line, which encoding/csv reports by
	// skipping — so we detect the edges header instead.
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil, fmt.Errorf("roadnet: missing edges section")
		}
		if err != nil {
			return nil, fmt.Errorf("roadnet: nodes line %d: %w", line, err)
		}
		line++
		if headerEqual(rec, edgeHeader) {
			break
		}
		if len(rec) != len(nodeHeader) {
			return nil, fmt.Errorf("roadnet: nodes line %d: %d fields", line, len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("roadnet: nodes line %d: id: %w", line, err)
		}
		if id != g.NumNodes() {
			return nil, fmt.Errorf("roadnet: nodes line %d: id %d out of order (want %d)", line, id, g.NumNodes())
		}
		lat, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("roadnet: nodes line %d: lat: %w", line, err)
		}
		lon, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("roadnet: nodes line %d: lon: %w", line, err)
		}
		p := geo.Point{Lat: lat, Lon: lon}
		if !p.Valid() {
			return nil, fmt.Errorf("roadnet: nodes line %d: invalid coordinates %v", line, p)
		}
		g.AddNode(p)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("roadnet: edges line %d: %w", line, err)
		}
		line++
		if len(rec) != len(edgeHeader) {
			return nil, fmt.Errorf("roadnet: edges line %d: %d fields", line, len(rec))
		}
		from, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("roadnet: edges line %d: from: %w", line, err)
		}
		to, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("roadnet: edges line %d: to: %w", line, err)
		}
		length, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("roadnet: edges line %d: length: %w", line, err)
		}
		class, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("roadnet: edges line %d: class: %w", line, err)
		}
		if class < 0 || class >= int(numRoadClasses) {
			return nil, fmt.Errorf("roadnet: edges line %d: unknown class %d", line, class)
		}
		if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
			return nil, fmt.Errorf("roadnet: edges line %d: edge %d->%d references missing node", line, from, to)
		}
		if length <= 0 {
			return nil, fmt.Errorf("roadnet: edges line %d: non-positive length %v", line, length)
		}
		g.AddEdge(NodeID(from), NodeID(to), length, RoadClass(class))
	}
	g.Freeze()
	return g, nil
}

func headerEqual(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

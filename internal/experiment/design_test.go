package experiment

import (
	"context"
	"testing"
)

func TestRunDesignAblation(t *testing.T) {
	sc := tinyScenario(t)
	ms, err := RunDesignAblation(context.Background(), sc, tinyConfig())
	if err != nil {
		t.Fatalf("RunDesignAblation: %v", err)
	}
	byName := map[string]Measurement{}
	for _, m := range ms {
		byName[m.Method] = m
	}
	full, ok1 := byName["EcoCharge"]
	noCache, ok2 := byName["Eco-NoCache"]
	exact, ok3 := byName["Eco-ExactIntervals"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing variants: %v", ms)
	}
	// Disabling the cache removes hits and must not be faster.
	if noCache.CacheHits != 0 {
		t.Errorf("no-cache variant still hit %d times", noCache.CacheHits)
	}
	if noCache.FtMillis.Mean < full.FtMillis.Mean {
		t.Errorf("no-cache faster than cached: %.2f vs %.2f", noCache.FtMillis.Mean, full.FtMillis.Mean)
	}
	// The no-cache variant is at least as accurate (no stale adaptation).
	if noCache.SCPercent.Mean < full.SCPercent.Mean-1 {
		t.Errorf("no-cache less accurate: %.1f vs %.1f", noCache.SCPercent.Mean, full.SCPercent.Mean)
	}
	// Exact intervals cost more time than the approximation.
	if exact.FtMillis.Mean < full.FtMillis.Mean {
		t.Errorf("exact intervals faster than approx: %.2f vs %.2f", exact.FtMillis.Mean, full.FtMillis.Mean)
	}
	// And land close in accuracy.
	if diff := exact.SCPercent.Mean - full.SCPercent.Mean; diff > 5 || diff < -5 {
		t.Errorf("approximation costs %.1f SC points", diff)
	}
}

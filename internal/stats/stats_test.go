package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev nil = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {50, 30}, {100, 50}, {25, 20}, {75, 40}, {-5, 10}, {200, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max not 0")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.P50, 3) || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestPropMeanWithinMinMax(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPercentileMonotone(t *testing.T) {
	f := func(seed int64, n uint8, p1, p2 float64) bool {
		if n == 0 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		a := math.Mod(math.Abs(p1), 100)
		b := math.Mod(math.Abs(p2), 100)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package flow

// summary.go computes intraprocedural summaries of a package's own
// functions, so the flow analyzers can reason across calls to small
// same-package helpers (acquire-returning constructors, release
// forwarders, unlock helpers) without a whole-program analysis. Calls
// into other packages stay opaque: the analyzers treat them
// conservatively (an argument passed to an unknown callee is assumed
// captured, so no finding is reported about it — false negatives over
// false positives).

import (
	"go/ast"
	"go/types"
	"strings"
)

// Receiver is the parameter index of a method's receiver in a
// FuncSummary.
const Receiver = -1

// FuncSummary describes the flow-relevant behavior of one function:
// which of its parameters it releases, captures, locks or unlocks.
// Parameter indices are 0-based; a method receiver is index Receiver.
type FuncSummary struct {
	Decl *ast.FuncDecl
	// Releases[i]: the body calls a niladic Release/release method on
	// parameter i (or on a field of it), so calling this function hands
	// the argument's cleanup over.
	Releases map[int]bool
	// Captures[i]: the body stores, returns or forwards parameter i
	// somewhere the caller cannot track (field, global, closure, unknown
	// callee), so the caller must stop tracking the argument.
	Captures map[int]bool
	// Locks[i] and Unlocks[i] are selector paths relative to parameter i
	// (e.g. ".mu") whose sync.Mutex/RWMutex the body locks or unlocks.
	Locks, Unlocks map[int][]string
}

func newFuncSummary(decl *ast.FuncDecl) *FuncSummary {
	return &FuncSummary{
		Decl:     decl,
		Releases: make(map[int]bool),
		Captures: make(map[int]bool),
		Locks:    make(map[int][]string),
		Unlocks:  make(map[int][]string),
	}
}

func appendPath(m map[int][]string, idx int, path string) bool {
	for _, p := range m[idx] {
		if p == path {
			return false
		}
	}
	m[idx] = append(m[idx], path)
	return true
}

// Summaries indexes the package's function summaries by their
// types.Object.
type Summaries struct {
	funcs map[types.Object]*FuncSummary
	info  *types.Info
	pkg   *types.Package
}

// Of returns the summary for the function object, or nil for functions
// of other packages (or non-functions).
func (s *Summaries) Of(obj types.Object) *FuncSummary {
	if s == nil || obj == nil {
		return nil
	}
	return s.funcs[obj]
}

// CalleeObject resolves the called function or method of a call
// expression, or nil (function values, conversions, builtins).
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fn].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// Summarize computes the package's function summaries to a fixpoint, so
// capture/release facts propagate through chains of same-package calls.
func Summarize(files []*ast.File, info *types.Info, pkg *types.Package) *Summaries {
	s := &Summaries{
		funcs: make(map[types.Object]*FuncSummary),
		info:  info,
		pkg:   pkg,
	}
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			s.funcs[obj] = newFuncSummary(fd)
			decls = append(decls, fd)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if s.summarizeFunc(fd) {
				changed = true
			}
		}
	}
	return s
}

// paramIndexes maps the function's receiver and parameter objects to
// their summary indices.
func paramIndexes(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	idx := make(map[types.Object]int)
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					idx[obj] = Receiver
				}
			}
		}
	}
	if fd.Type.Params != nil {
		i := 0
		for _, f := range fd.Type.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					idx[obj] = i
				}
				i++
			}
		}
	}
	return idx
}

// summarizeFunc re-derives one function's summary, reporting whether any
// fact was added (fixpoint detection).
func (s *Summaries) summarizeFunc(fd *ast.FuncDecl) bool {
	sum := s.funcs[s.info.Defs[fd.Name]]
	params := paramIndexes(s.info, fd)
	changed := false
	set := func(m map[int]bool, idx int) {
		if !m[idx] {
			m[idx] = true
			changed = true
		}
	}

	// Walk with an explicit parent stack so each parameter occurrence can
	// be classified by its syntactic context.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if idx, ok := params[s.info.Uses[id]]; ok {
				use := ClassifyUse(stack, id)
				switch use.Kind {
				case UseMethodCall:
					name := use.Sel.Sel.Name
					switch {
					case isReleaseName(name) && len(use.Call.Args) == 0:
						set(sum.Releases, idx)
					case (name == "Lock" || name == "RLock") && s.isMutexPath(use.Sel.X):
						if appendPath(sum.Locks, idx, use.Path) {
							changed = true
						}
					case (name == "Unlock" || name == "RUnlock") && s.isMutexPath(use.Sel.X):
						if appendPath(sum.Unlocks, idx, use.Path) {
							changed = true
						}
					case use.Path == "":
						// Direct method on the parameter itself: propagate
						// the method's receiver facts when it is ours.
						if m := s.Of(s.info.Uses[use.Sel.Sel]); m != nil {
							if m.Releases[Receiver] {
								set(sum.Releases, idx)
							}
							if m.Captures[Receiver] {
								set(sum.Captures, idx)
							}
							for _, p := range m.Locks[Receiver] {
								if appendPath(sum.Locks, idx, p) {
									changed = true
								}
							}
							for _, p := range m.Unlocks[Receiver] {
								if appendPath(sum.Unlocks, idx, p) {
									changed = true
								}
							}
						}
					}
				case UseBareArg:
					obj := CalleeObject(s.info, use.Call)
					if g := s.Of(obj); g != nil {
						if g.Releases[use.Arg] {
							set(sum.Releases, idx)
						}
						if g.Captures[use.Arg] {
							set(sum.Captures, idx)
						}
						for _, p := range g.Locks[use.Arg] {
							if appendPath(sum.Locks, idx, p) {
								changed = true
							}
						}
						for _, p := range g.Unlocks[use.Arg] {
							if appendPath(sum.Unlocks, idx, p) {
								changed = true
							}
						}
					} else {
						// Unknown or cross-package callee: assume captured.
						set(sum.Captures, idx)
					}
				case UseFieldRead:
					// Reading a field (or passing a field copy) does not
					// capture the parameter itself — unless the read hands a
					// releasable sub-resource back to the caller.
					if use.InReturn && use.Expr != nil {
						if _, rel := ReleasableType(s.info.TypeOf(use.Expr)); rel {
							set(sum.Captures, idx)
						}
					}
				case UseCapture:
					set(sum.Captures, idx)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return changed
}

// UseKind classifies one syntactic occurrence of a parameter.
type UseKind uint8

const (
	UseCapture UseKind = iota
	UseMethodCall
	UseBareArg
	UseFieldRead
)

// Use is the classification of one parameter occurrence: the use
// kind plus, per kind, the selector path from the parameter to the
// method receiver and the enclosing call/argument slot.
type Use struct {
	Kind UseKind
	Path string
	Sel  *ast.SelectorExpr // the method selector (UseMethodCall)
	Call *ast.CallExpr     // the enclosing call (UseMethodCall, UseBareArg)
	Arg  int               // the argument index (UseBareArg)
	Expr ast.Expr          // the climbed selector expression (UseFieldRead)
	// inReturn marks a field read inside a return statement; the caller
	// treats it as a capture when the field's type is itself releasable.
	InReturn bool
}

// ClassifyUse inspects the parent chain of a parameter identifier.
func ClassifyUse(stack []ast.Node, id *ast.Ident) Use {
	// Climb selector chains rooted at the identifier.
	cur := ast.Node(id)
	path := ""
	i := len(stack) - 1
	for i >= 0 {
		sel, ok := stack[i].(*ast.SelectorExpr)
		if !ok || sel.X != cur {
			break
		}
		// sel.Sel might be the method being called; peek at the parent.
		if i > 0 {
			if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == sel {
				return Use{Kind: UseMethodCall, Path: path, Sel: sel, Call: call}
			}
		}
		path += "." + sel.Sel.Name
		cur = sel
		i--
	}
	parent := ast.Node(nil)
	if i >= 0 {
		parent = stack[i]
	}
	if cur != ast.Node(id) {
		// The use is a field read d.f... — safe unless it happens inside a
		// function literal (the closure extends the parameter's lifetime)
		// or the field is itself returned (the caller decides whether the
		// returned value hands out part of the resource, by its type).
		for j := i; j >= 0; j-- {
			switch stack[j].(type) {
			case *ast.FuncLit:
				return Use{Kind: UseCapture}
			case *ast.ReturnStmt:
				return Use{Kind: UseFieldRead, Path: path, Expr: cur.(ast.Expr), InReturn: true}
			}
		}
		return Use{Kind: UseFieldRead, Path: path, Expr: cur.(ast.Expr)}
	}
	// Bare identifier: a call argument gets summary propagation, anything
	// else (return, assignment, composite literal, closure, send, ...)
	// is a capture. Pure-read statement contexts that cannot smuggle the
	// value keep it safe.
	if call, ok := parent.(*ast.CallExpr); ok {
		for ai, a := range call.Args {
			if a == cur {
				return Use{Kind: UseBareArg, Call: call, Arg: ai}
			}
		}
	}
	switch parent.(type) {
	case *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.BlockStmt:
		return Use{Kind: UseFieldRead}
	}
	return Use{Kind: UseCapture}
}

func isReleaseName(name string) bool { return name == "Release" || name == "release" }

// isMutexPath reports whether the receiver expression is (a pointer to)
// sync.Mutex or sync.RWMutex.
func (s *Summaries) isMutexPath(x ast.Expr) bool {
	return IsMutex(s.info.TypeOf(x))
}

// IsMutex reports whether t (or the type t points to) is sync.Mutex or
// sync.RWMutex.
func IsMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ReleasableType reports whether t is (a pointer to) a named type with a
// niladic Release or release method — the ownership contract the
// leakrelease analyzer enforces. It returns the type's name.
func ReleasableType(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !isReleaseName(m.Name()) {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return named.Obj().Name(), true
		}
	}
	return "", false
}

// PathString renders a selector/index expression as a stable string for
// lock identity (e.g. "s.mu", "c.shards[i].mu"). Unsupported shapes
// render with a position-independent placeholder so distinct complex
// expressions rarely collide.
func PathString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return PathString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return PathString(e.X) + "[" + PathString(e.Index) + "]"
	case *ast.StarExpr:
		return PathString(e.X)
	case *ast.CallExpr:
		return PathString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}

// HasSuffixPath reports whether the rendered lock path root+suffix
// matches path (helper for applying Locks/Unlocks summaries).
func HasSuffixPath(path, root, suffix string) bool {
	return path == root+suffix || strings.HasSuffix(path, root+suffix)
}

package cknn

import (
	"testing"
	"time"

	"ecocharge/internal/ec"
)

// The environment's production helpers must compose solar and wind.
func TestProductionForecastCombinesRES(t *testing.T) {
	env := testEnv(t)
	// Attach a wind model; pick a charger and force wind capacity onto a
	// copy through a fresh environment.
	chargers := env.Chargers.All()
	var windy, solarOnly int
	for i := range chargers {
		if chargers[i].WindKW > 0 {
			windy = i
		} else if chargers[i].PanelKW > 0 {
			solarOnly = i
		}
	}
	withWind, err := NewEnv(env.Graph, env.Chargers, env.Solar, env.Avail, env.Traffic,
		EnvConfig{RadiusM: 10000, Wind: ec.NewWindModel(77)})
	if err != nil {
		t.Fatal(err)
	}
	night := time.Date(2024, 6, 18, 22, 0, 0, 0, time.UTC) // no sun at lon 8

	// Wind-equipped charger: production at night can be nonzero; solar-only
	// charger: always zero at night.
	so := &withWind.Chargers.All()[solarOnly]
	if p := withWind.ProductionTruth(so, night); p != 0 {
		t.Errorf("solar-only charger produced %v at night", p)
	}
	wc := &withWind.Chargers.All()[windy]
	if wc.WindKW == 0 {
		t.Skip("generated set has no wind charger")
	}
	// Over two weeks of nights the wind charger produces something.
	var total float64
	for d := 0; d < 14; d++ {
		total += withWind.ProductionTruth(wc, night.AddDate(0, 0, d))
	}
	if total == 0 {
		t.Error("wind charger never produced at night across two weeks")
	}
	// The forecast contains the truth.
	iv := withWind.ProductionForecast(wc, night, night.Add(-2*time.Hour))
	if !iv.Contains(withWind.ProductionTruth(wc, night)) {
		t.Errorf("combined forecast %v missing truth %v", iv, withWind.ProductionTruth(wc, night))
	}
	// Without a wind model the same charger forecasts solar only (zero at
	// night).
	if iv := env.ProductionForecast(wc, night, night); iv.Max != 0 {
		t.Errorf("wind-less env forecast at night = %v, want 0", iv)
	}
}

// MaxLKW reflects the combined RES capacity cap.
func TestMaxLKWUsesCombinedCapacity(t *testing.T) {
	env := testEnv(t)
	max := 0.0
	for _, c := range env.Chargers.All() {
		eff := c.RESKW()
		if r := c.Rate.KW(); eff > r {
			eff = r
		}
		if eff > max {
			max = eff
		}
	}
	if env.MaxLKW != max {
		t.Fatalf("MaxLKW = %v, want %v", env.MaxLKW, max)
	}
}

// Package stats provides the small statistics helpers the experiment
// harness uses to report mean ± standard deviation over the ~10 repetitions
// the paper's evaluation performs.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator), or 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between closest ranks, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the descriptive statistics of one measurement series.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary in one pass over the helpers above.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		P99:    Percentile(xs, 99),
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPrint reports fmt.Print*/log.Print* (and log.Fatal*/log.Panic*) calls
// inside internal/ library packages. Library code must return values or
// errors; human-readable output belongs to the cmd/ front-ends and to
// internal/render, which is the one internal package whose job is
// formatting. A library that prints cannot be embedded in the concurrent
// ranking service without interleaving garbage on stdout, and log.Fatal
// kills the whole process from a depth where the caller could have
// recovered.
var LibPrint = &Analyzer{
	Name: "libprint",
	Doc:  "flags fmt/log printing inside internal/ library packages (output belongs in cmd/ and internal/render)",
	Run:  runLibPrint,
}

// libPrintFuncs maps package import path to the banned function names.
var libPrintFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

func runLibPrint(pass *Pass) {
	path := pass.Pkg.ImportPath
	if !strings.Contains(path, "/internal/") || strings.HasSuffix(path, "internal/render") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			banned := libPrintFuncs[pkgName.Imported().Path()]
			if banned != nil && banned[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"%s.%s in library package %s; return values and let cmd/ or internal/render do the output",
					pkgName.Imported().Path(), sel.Sel.Name, path)
			}
			return true
		})
	}
}

package lint

// LockHeld enforces lock discipline in the three hot packages
// (internal/cknn, internal/eis, internal/roadnet): a held sync.Mutex or
// sync.RWMutex may not span an operation that can block indefinitely —
// channel sends/receives (unless guarded by a select default), net/http
// calls, time.Sleep, or sync.WaitGroup.Wait — and every lock must be
// balanced by an unlock (direct or deferred) on every path out of the
// function.
//
// Locks are identified by the printed form of their receiver expression
// ("s.mu", "c.shards[i].mu"), which is exactly the alias precision a
// reviewer applies. Same-package helpers that lock or unlock on behalf of
// the caller are understood through the flow package's summaries.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ecocharge/internal/lint/flow"
)

var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "held mutexes must not span blocking operations and must unlock on every path",
	Run:  runLockHeld,
}

var lockHeldPackages = []string{"internal/cknn", "internal/eis", "internal/roadnet", "internal/fleet"}

func runLockHeld(p *Pass) {
	inScope := false
	for _, suffix := range lockHeldPackages {
		if strings.HasSuffix(p.Pkg.ImportPath, suffix) {
			inScope = true
		}
	}
	if !inScope {
		return
	}
	sums := flow.Summarize(p.Pkg.Files, p.Pkg.Info, p.Pkg.Types)
	for _, f := range p.Pkg.Files {
		flow.Functions(f, func(name string, fn ast.Node, body *ast.BlockStmt) {
			a := &lhAnalysis{pass: p, sums: sums, lockPos: make(map[string]token.Pos)}
			a.run(fn, body)
		})
	}
}

// lhBits is the abstract state of one lock path.
type lhBits uint8

const (
	lhWrite  lhBits = 1 << iota // write-locked on some path
	lhRead                      // read-locked on some path
	lhDeferU                    // a deferred unlock covers the exits
)

type lhFact map[string]lhBits

func lhEmpty() lhFact { return make(lhFact) }

func lhClone(f lhFact) lhFact {
	out := make(lhFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func lhEqual(a, b lhFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func lhJoin(dst, src lhFact) lhFact {
	for k, v := range src {
		dst[k] |= v
	}
	return dst
}

type lhAnalysis struct {
	pass    *Pass
	sums    *flow.Summaries
	g       *flow.Graph
	lockPos map[string]token.Pos
}

func (a *lhAnalysis) run(fn ast.Node, body *ast.BlockStmt) {
	a.g = flow.New(body)
	res := flow.Solve(a.g, flow.Problem[lhFact]{
		Dir:      flow.Forward,
		Boundary: lhEmpty,
		Init:     lhEmpty,
		Transfer: func(b *flow.Block, in lhFact) lhFact {
			for _, n := range b.Nodes {
				a.step(n, in, nil)
			}
			return in
		},
		Join:  lhJoin,
		Equal: lhEqual,
		Clone: lhClone,
	})

	rep := func(pos token.Pos, format string, args ...any) {
		a.pass.Reportf(pos, format, args...)
	}
	for _, b := range a.g.Blocks {
		fact := lhClone(res.In[b])
		for _, n := range b.Nodes {
			a.step(n, fact, rep)
		}
	}

	// Balance: a lock still held at exit with no deferred unlock escapes
	// the function locked. Deliberate lock-helpers — functions that lock a
	// parameter's mutex and never unlock it anywhere in their body — are
	// exempt: holding is their contract. A function that unlocks the same
	// mutex on *some* path is not a helper; an exit where it is still held
	// is a missed path.
	helper := make(map[string]bool)
	if fd, ok := fn.(*ast.FuncDecl); ok {
		if sum := a.sums.Of(a.pass.Pkg.Info.Defs[fd.Name]); sum != nil {
			params := lhParamNames(fd)
			for idx, paths := range sum.Locks {
				unlocked := make(map[string]bool)
				for _, path := range sum.Unlocks[idx] {
					unlocked[path] = true
				}
				for _, path := range paths {
					if name, ok := params[idx]; ok && !unlocked[path] {
						helper[name+path] = true
					}
				}
			}
		}
	}
	exit := res.In[a.g.Exit]
	keys := make([]string, 0, len(exit))
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bits := exit[k]
		if bits&(lhWrite|lhRead) != 0 && bits&lhDeferU == 0 && !helper[k] {
			pos := a.lockPos[k]
			if !pos.IsValid() {
				pos = fn.Pos()
			}
			a.pass.Reportf(pos, "%s may still be held when the function returns (unlock on every path or defer it)", k)
		}
	}
}

// lhParamNames maps summary parameter indices to the receiver/parameter
// names of the declaration.
func lhParamNames(fd *ast.FuncDecl) map[int]string {
	out := make(map[int]string)
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				out[flow.Receiver] = n.Name
			}
		}
	}
	if fd.Type.Params != nil {
		i := 0
		for _, f := range fd.Type.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, n := range f.Names {
				out[i] = n.Name
				i++
			}
		}
	}
	return out
}

// step interprets one CFG node: lock/unlock transitions (direct or via
// summarized helpers), deferred unlock registration, and — when rep is
// set — blocking-operation checks against the currently-held set.
func (a *lhAnalysis) step(n ast.Node, fact lhFact, rep lrReporter) {
	if ds, ok := n.(*ast.DeferStmt); ok {
		a.stepDefer(ds, fact)
		return
	}
	info := a.pass.Pkg.Info
	flow.Inspect(n, func(inner ast.Node) bool {
		switch inner := inner.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !a.g.NonBlocking[n] {
				a.checkHeld(fact, rep, inner.Pos(), "a channel send")
			}
		case *ast.UnaryExpr:
			if inner.Op == token.ARROW && !a.g.NonBlocking[n] {
				a.checkHeld(fact, rep, inner.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok && flow.IsMutex(info.TypeOf(sel.X)) {
				key := flow.PathString(sel.X)
				switch sel.Sel.Name {
				case "Lock":
					if fact[key]&lhWrite != 0 && rep != nil {
						rep(inner.Pos(), "%s.Lock() while %s is already write-locked on some path (self-deadlock)", key, key)
					}
					fact[key] |= lhWrite
					a.notePos(key, inner.Pos())
				case "RLock":
					if fact[key]&lhWrite != 0 && rep != nil {
						rep(inner.Pos(), "%s.RLock() while %s is write-locked on some path (self-deadlock)", key, key)
					}
					fact[key] |= lhRead
					a.notePos(key, inner.Pos())
				case "Unlock":
					fact[key] &^= lhWrite
				case "RUnlock":
					fact[key] &^= lhRead
				}
				return true
			}
			// Same-package helpers that lock or unlock for the caller.
			if m := a.sums.Of(flow.CalleeObject(info, inner)); m != nil {
				a.applySummary(inner, m, fact)
			}
			if desc := blockingCallDesc(info, inner); desc != "" {
				a.checkHeld(fact, rep, inner.Pos(), desc)
			}
		}
		return true
	})
}

// applySummary replays a callee's lock/unlock effects, re-rooting the
// summary's parameter-relative paths at the call's receiver/arguments.
func (a *lhAnalysis) applySummary(call *ast.CallExpr, m *flow.FuncSummary, fact lhFact) {
	root := func(idx int) (string, bool) {
		if idx == flow.Receiver {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return flow.PathString(sel.X), true
			}
			return "", false
		}
		if idx < len(call.Args) {
			return flow.PathString(call.Args[idx]), true
		}
		return "", false
	}
	for idx, paths := range m.Locks {
		if base, ok := root(idx); ok {
			for _, path := range paths {
				fact[base+path] |= lhWrite
				a.notePos(base+path, call.Pos())
			}
		}
	}
	for idx, paths := range m.Unlocks {
		if base, ok := root(idx); ok {
			for _, path := range paths {
				fact[base+path] &^= lhWrite | lhRead
			}
		}
	}
}

// stepDefer registers deferred unlocks: defer mu.Unlock(), deferred
// unlock helpers, and defer func() { ...Unlock()... }().
func (a *lhAnalysis) stepDefer(ds *ast.DeferStmt, fact lhFact) {
	info := a.pass.Pkg.Info
	markUnlocks := func(n ast.Node) {
		ast.Inspect(n, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && flow.IsMutex(info.TypeOf(sel.X)) {
				if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
					fact[flow.PathString(sel.X)] |= lhDeferU
				}
				return true
			}
			if m := a.sums.Of(flow.CalleeObject(info, call)); m != nil {
				for idx, paths := range m.Unlocks {
					var base string
					switch {
					case idx == flow.Receiver:
						sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						base = flow.PathString(sel.X)
					case idx < len(call.Args):
						base = flow.PathString(call.Args[idx])
					default:
						continue
					}
					for _, path := range paths {
						fact[base+path] |= lhDeferU
					}
				}
			}
			return true
		})
	}
	if fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
		markUnlocks(fl.Body)
		return
	}
	markUnlocks(ds.Call)
}

func (a *lhAnalysis) checkHeld(fact lhFact, rep lrReporter, pos token.Pos, what string) {
	if rep == nil {
		return
	}
	keys := make([]string, 0, len(fact))
	for k, bits := range fact {
		if bits&(lhWrite|lhRead) != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep(pos, "%s is held across %s, which can block indefinitely", k, what)
	}
}

func (a *lhAnalysis) notePos(key string, pos token.Pos) {
	if _, ok := a.lockPos[key]; !ok {
		a.lockPos[key] = pos
	}
}

// blockingCallDesc describes the call when it can block indefinitely:
// time.Sleep, the net/http request entry points (package-level Get/Post/
// Head/PostForm and the Client/Transport request methods — but not
// incidental accessors like Header.Get), and sync.WaitGroup.Wait
// (Cond.Wait counts for the same reason).
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn, ok := flow.CalleeObject(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" && sig.Recv() == nil {
			return "time.Sleep"
		}
	case "net/http":
		if sig.Recv() == nil {
			switch fn.Name() {
			case "Get", "Post", "Head", "PostForm":
				return "an http request (http." + fn.Name() + ")"
			}
			return ""
		}
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
			return "an http request (" + fn.Name() + ")"
		}
	case "sync":
		if fn.Name() == "Wait" {
			return "a sync Wait"
		}
	}
	return ""
}

package roadnet

// Differential suite for the target-aware expansions (many.go). The oracle
// is the same verbatim map-backed Dijkstra the flat kernel is tested
// against: at every *target* node, ExpandToMany (and its reverse form) must
// reproduce the oracle's reachability and distances bit for bit — early
// termination may truncate the rest of the ball, but never what the caller
// reads. FuzzExpandToMany extends the same property to fuzzer-chosen graphs
// and degenerate target sets.

import (
	"math"
	"math/rand"
	"testing"
)

// manyTargetSets enumerates the degenerate shapes a target set can take on
// a graph of n nodes: random spreads, duplicates, invalid IDs, the source
// itself, and sets living in the (possibly disconnected) tail.
func manyTargetSets(rng *rand.Rand, n int, src NodeID) map[string][]NodeID {
	spread := make([]NodeID, 0, 12)
	for i := 0; i < 12; i++ {
		spread = append(spread, NodeID(rng.Intn(n)))
	}
	dup := []NodeID{spread[0], spread[0], spread[1], spread[0]}
	tail := []NodeID{NodeID(n - 1), NodeID(n - 2), NodeID(n - 1)}
	return map[string][]NodeID{
		"spread":     spread,
		"duplicates": dup,
		"withSrc":    {src, spread[2], src},
		"invalid":    {-1, NodeID(n), NodeID(n + 7), spread[3]},
		"tail":       tail,
		"single":     {spread[4]},
	}
}

// checkManyAgainstOracle compares the expansion at each target against the
// oracle map, requiring identical reachability and bit-identical distances.
func checkManyAgainstOracle(t *testing.T, label string, x Expansion, targets []NodeID, want map[NodeID]float64) {
	t.Helper()
	for _, tgt := range targets {
		wd, wok := want[tgt]
		gd, gok := x.Dist(tgt)
		if gok != wok {
			t.Fatalf("%s target %d: reachability got %v, oracle %v", label, tgt, gok, wok)
		}
		if gok && math.Float64bits(gd) != math.Float64bits(wd) {
			t.Fatalf("%s target %d: dist %v (%x) != oracle %v (%x)",
				label, tgt, gd, math.Float64bits(gd), wd, math.Float64bits(wd))
		}
	}
}

// TestExpandToManyMatchesOracle is the core differential property: over
// random graphs, weight tables, bounds, directions, and degenerate target
// sets, the target-aware expansion must agree with the map-backed reference
// Dijkstra at every target.
func TestExpandToManyMatchesOracle(t *testing.T) {
	for gname, g := range diffGraphs() {
		for tname, cw := range diffTables() {
			rng := rand.New(rand.NewSource(41))
			w := cw.Func()
			for trial := 0; trial < 6; trial++ {
				src := NodeID(rng.Intn(g.NumNodes()))
				for _, bound := range []float64{math.Inf(1), 1500, 4000} {
					want, _ := refDijkstra(g, src, Invalid, w, bound)
					wantR := refDistancesTo(g, src, w, bound)
					for sname, targets := range manyTargetSets(rng, g.NumNodes(), src) {
						label := gname + "/" + tname + "/" + sname
						x := g.ExpandToMany(src, targets, cw, bound)
						checkManyAgainstOracle(t, label+"/fwd", x, targets, want)
						x.Release()

						xr := g.ExpandToManyReverse(src, targets, cw, bound)
						checkManyAgainstOracle(t, label+"/rev", xr, targets, wantR)
						xr.Release()
					}
				}
			}
		}
	}
}

// TestExpandToManyEdgeCases pins the contract's corners: empty and
// all-invalid target sets price nothing, an invalid origin reaches nothing,
// src-only target sets terminate immediately with dist 0, and a bound
// smaller than the nearest target leaves every target unreached.
func TestExpandToManyEdgeCases(t *testing.T) {
	g := tinyGraph()
	cw := DistanceClassWeights()

	x := g.ExpandToMany(0, nil, cw, math.Inf(1))
	for n := 0; n < g.NumNodes(); n++ {
		if _, ok := x.Dist(NodeID(n)); ok {
			t.Fatalf("empty target set reached node %d", n)
		}
	}
	x.Release()

	x = g.ExpandToMany(0, []NodeID{-3, NodeID(g.NumNodes()), Invalid}, cw, math.Inf(1))
	for n := 0; n < g.NumNodes(); n++ {
		if _, ok := x.Dist(NodeID(n)); ok {
			t.Fatalf("all-invalid target set reached node %d", n)
		}
	}
	x.Release()

	x = g.ExpandToMany(Invalid, []NodeID{0, 1}, cw, math.Inf(1))
	if _, ok := x.Dist(0); ok {
		t.Fatal("invalid origin reached a target")
	}
	x.Release()

	x = g.ExpandToMany(2, []NodeID{2}, cw, math.Inf(1))
	if d, ok := x.Dist(2); !ok || d != 0 {
		t.Fatalf("src-only target set: dist %v ok %v, want 0 true", d, ok)
	}
	x.Release()

	// Node 1 is 1000 m from node 0 in tinyGraph; a 500 m bound cannot
	// settle any target, and the expansion must report them unreachable
	// exactly like the full bounded expansion does.
	x = g.ExpandToMany(0, []NodeID{1, 4}, cw, 500)
	if _, ok := x.Dist(1); ok {
		t.Fatal("target beyond the bound reported reachable")
	}
	if _, ok := x.Dist(4); ok {
		t.Fatal("far target beyond the bound reported reachable")
	}
	x.Release()

	// Targets in a disconnected component: the expansion exhausts the
	// reachable ball (paying what ExpandFrom pays) and reports them
	// unreachable.
	dg := randomSparseGraph(4, 160, 2, true)
	iso := NodeID(dg.NumNodes() - 1)
	xd := dg.ExpandToMany(0, []NodeID{iso}, DistanceClassWeights(), math.Inf(1))
	if _, ok := xd.Dist(iso); ok {
		t.Fatal("isolated target reported reachable")
	}
	xd.Release()
}

// TestExpandToManyEarlyTerminates asserts the point of the primitive: with
// all targets near the source, the truncated expansion settles a small
// fraction of what the full expansion settles, visible through the
// roadnet_many_* counters.
func TestExpandToManyEarlyTerminates(t *testing.T) {
	g := smallUrban(5)
	cw := TimeClassWeights()
	src := NodeID(g.NumNodes() / 2)
	// Targets: the immediate out-neighbors of src.
	var targets []NodeID
	g.OutEdges(src, func(e Edge) { targets = append(targets, e.To) })
	if len(targets) == 0 {
		t.Fatal("source has no out-neighbors")
	}

	settledBefore := met.manySettled.Value()
	earlyBefore := met.manyEarlyTerms.Value()
	x := g.ExpandToMany(src, targets, cw, math.Inf(1))
	x.Release()
	settled := met.manySettled.Value() - settledBefore

	if settled == 0 || settled > uint64(g.NumNodes())/4 {
		t.Fatalf("settled %d of %d nodes; early termination should touch far fewer", settled, g.NumNodes())
	}
	if met.manyEarlyTerms.Value() == earlyBefore {
		t.Fatal("expansion with near targets did not terminate early")
	}
}

// TestExpandToManyStampWrapReuse drives the targ generation array through
// the uint32 stamp wrap: stale target marks from four billion searches ago
// must not masquerade as live targets (which would terminate a fresh search
// too early).
func TestExpandToManyStampWrapReuse(t *testing.T) {
	g := tinyGraph()
	st := newSearchState(g)
	st.stamp = math.MaxUint32 - 1
	for i := range st.mark {
		st.mark[i] = nodeMark{done: 1, targ: 1} // would alias stamp 1 after a naive wrap
		st.seen[i] = 1
	}
	st.inUse = true
	st.begin() // -> MaxUint32
	if got := st.markTargets([]NodeID{4}); got != 1 {
		t.Fatalf("markTargets = %d, want 1", got)
	}
	st.run(0, Invalid, nil, &ClassWeights{1, 1, 1, 1}, math.Inf(1), false, false)
	if st.targetsLeft != 0 {
		t.Fatalf("target not settled before wrap: targetsLeft = %d", st.targetsLeft)
	}

	st.inUse = true
	st.begin() // wraps: arrays cleared, stamp 1
	if st.stamp != 1 {
		t.Fatalf("stamp after wrap = %d, want 1", st.stamp)
	}
	// No targets marked this generation: the stale marks (all 1 before the
	// wrap) must have been cleared, so the search must run to exhaustion
	// and reach the whole component.
	st.run(0, Invalid, nil, &ClassWeights{1, 1, 1, 1}, math.Inf(1), false, false)
	if d, ok := st.dist[4], st.reached(4); !ok || d != 4000 {
		t.Fatalf("post-wrap search truncated: dist[4]=%v reached=%v, want 4000 true", d, ok)
	}
}

// TestExpandToManyZeroAllocSteadyState asserts the acceptance criterion for
// the batched path: once the pool is warm, a target-aware expansion plus
// reads plus release allocates nothing.
func TestExpandToManyZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	g := smallUrban(2)
	cw := TimeClassWeights()
	src := NodeID(0)
	targets := []NodeID{3, 9, 14, 21, NodeID(g.NumNodes() - 1)}
	for i := 0; i < 4; i++ {
		x := g.ExpandToMany(src, targets, cw, 600)
		x.Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		x := g.ExpandToMany(src, targets, cw, 600)
		for _, tgt := range targets {
			x.Dist(tgt)
		}
		x.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state many-target expansion allocates %.1f allocs/op, want 0", allocs)
	}
}

// FuzzExpandToMany fuzzes the differential property: arbitrary graphs,
// bounds, directions and target sets (duplicates, unreachable nodes,
// src∈targets, invalid IDs, empty sets) against the verbatim map-Dijkstra
// oracle.
func FuzzExpandToMany(f *testing.F) {
	f.Add(int64(1), uint8(60), uint8(2), float64(2500), int64(9), uint8(8), false)
	f.Add(int64(2), uint8(120), uint8(3), math.Inf(1), int64(3), uint8(0), true)
	f.Add(int64(3), uint8(40), uint8(1), float64(100), int64(5), uint8(30), false)
	f.Fuzz(func(t *testing.T, gseed int64, nRaw, degRaw uint8, bound float64, tseed int64, nTargets uint8, reverse bool) {
		n := 8 + int(nRaw)%200
		deg := 1 + int(degRaw)%4
		g := randomSparseGraph(gseed, n, deg, gseed%2 == 0)
		if math.IsNaN(bound) || bound < 0 {
			bound = math.Inf(1)
		}
		cw := TimeClassWeights()
		w := cw.Func()

		rng := rand.New(rand.NewSource(tseed))
		src := NodeID(rng.Intn(g.NumNodes()))
		targets := make([]NodeID, 0, int(nTargets))
		for i := 0; i < int(nTargets); i++ {
			// Biased into range but spilling past both ends, so invalid IDs
			// and the isolated tail both occur.
			targets = append(targets, NodeID(rng.Intn(g.NumNodes()+6)-3))
		}
		if nTargets%5 == 0 && len(targets) > 0 {
			targets = append(targets, src, targets[0]) // src∈targets + duplicate
		}

		var want map[NodeID]float64
		var x Expansion
		if reverse {
			want = refDistancesTo(g, src, w, bound)
			x = g.ExpandToManyReverse(src, targets, cw, bound)
		} else {
			want, _ = refDijkstra(g, src, Invalid, w, bound)
			x = g.ExpandToMany(src, targets, cw, bound)
		}
		defer x.Release()
		for _, tgt := range targets {
			wd, wok := want[tgt]
			if !g.validID(tgt) {
				wok = false
			}
			gd, gok := x.Dist(tgt)
			if gok != wok {
				t.Fatalf("target %d: reachability got %v, oracle %v (reverse=%v)", tgt, gok, wok, reverse)
			}
			if gok && math.Float64bits(gd) != math.Float64bits(wd) {
				t.Fatalf("target %d: dist %v != oracle %v (reverse=%v)", tgt, gd, wd, reverse)
			}
		}
	})
}

// BenchmarkManyToMany prices one anchor against T targets three ways: the
// full-ball expansion the derouting path used before this PR (one bounded
// Dijkstra, read T nodes), the target-aware truncated expansion, and the
// bucket-CH sweep (buckets prebuilt, one upward sweep per anchor). Compare
// ns/op across target counts to see where each wins; allocs/op must stay 0
// for the two kernel paths.
func BenchmarkManyToMany(b *testing.B) {
	cfg := DefaultUrbanConfig()
	cfg.WidthKM, cfg.HeightKM = 12, 10
	cfg.Seed = 9
	g := GenerateUrban(cfg)
	cw := TimeClassWeights()
	src := NodeID(g.NumNodes() / 2)
	bound := math.Inf(1)
	rng := rand.New(rand.NewSource(17))

	for _, tc := range []int{10, 100, 1000} {
		targets := make([]NodeID, tc)
		for i := range targets {
			targets[i] = NodeID(rng.Intn(g.NumNodes()))
		}
		b.Run("FullBall/"+itoa(tc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x := g.ExpandFrom(src, cw, bound)
				for _, tgt := range targets {
					x.Dist(tgt)
				}
				x.Release()
			}
		})
		b.Run("Batched/"+itoa(tc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x := g.ExpandToMany(src, targets, cw, bound)
				for _, tgt := range targets {
					x.Dist(tgt)
				}
				x.Release()
			}
		})
		b.Run("BucketCH/"+itoa(tc), func(b *testing.B) {
			ch := benchCH(b, g, cw)
			buckets := ch.TargetBuckets(targets)
			out := make([]float64, len(targets))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = buckets.DistancesFrom(src, out)
			}
		})
	}
}

// benchCH builds (once) and caches the hierarchy for the benchmark graph.
var benchCHCache *ContractionHierarchy

func benchCH(b *testing.B, g *Graph, cw ClassWeights) *ContractionHierarchy {
	b.Helper()
	if benchCHCache == nil {
		benchCHCache = BuildCH(g, cw.Func())
	}
	return benchCHCache
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

package ec

import (
	"math"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
)

// SolarModel predicts the clean power available at a charger site. It
// combines a deterministic clear-sky irradiance curve (solar elevation from
// latitude, day-of-year and hour) with a stochastic-but-reproducible cloud
// cover process and horizon-dependent forecast uncertainty.
//
// Truth(site, t) is the actual production; Forecast(site, t, issuedAt)
// returns an interval that always contains the truth and whose width grows
// with t − issuedAt following the accuracy schedule of the paper's weather
// sources.
type SolarModel struct {
	// Seed selects the weather realization. Experiments vary it across
	// repetitions.
	Seed int64
	// CloudVariability in [0,1] scales how strongly clouds attenuate
	// production; 0 is permanent clear sky. Default 0.6.
	CloudVariability float64
}

// NewSolarModel returns a model with the default variability.
func NewSolarModel(seed int64) *SolarModel {
	return &SolarModel{Seed: seed, CloudVariability: 0.6}
}

// Site describes a production site for the solar model.
type Site struct {
	ID         int64
	P          geo.Point
	CapacityKW float64 // peak panel capacity
}

// ClearSkyFactor returns the fraction of peak capacity a site produces
// under a cloudless sky at time t: sin of solar elevation, clamped at 0.
// The declination uses the standard Cooper approximation; longitudes shift
// local solar time.
func ClearSkyFactor(p geo.Point, t time.Time) float64 {
	ut := t.UTC()
	doy := float64(ut.YearDay())
	decl := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*(284+doy)/365)
	lat := p.Lat * math.Pi / 180
	// Local solar hour from UTC plus longitude offset.
	hour := float64(ut.Hour()) + float64(ut.Minute())/60 + p.Lon/15
	hourAngle := (hour - 12) * 15 * math.Pi / 180
	sinElev := math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(hourAngle)
	if sinElev < 0 {
		return 0
	}
	return sinElev
}

// cloudCover returns the true cloud attenuation in [0, CloudVariability]
// for the site's weather cell at time t.
func (m *SolarModel) cloudCover(site Site, t time.Time) float64 {
	// Weather cells of ~0.1 degree: nearby chargers share weather.
	cellLat := int64(math.Floor(site.P.Lat * 10))
	cellLon := int64(math.Floor(site.P.Lon * 10))
	cell := uint64(cellLat)<<32 ^ uint64(uint32(cellLon))
	hours := float64(t.Unix()) / 3600
	return smoothNoise(uint64(m.Seed), cell, hours) * m.variability()
}

func (m *SolarModel) variability() float64 {
	if m.CloudVariability <= 0 || m.CloudVariability > 1 {
		return 0.6
	}
	return m.CloudVariability
}

// Truth returns the actual production in kW at time t.
func (m *SolarModel) Truth(site Site, t time.Time) float64 {
	return site.CapacityKW * ClearSkyFactor(site.P, t) * (1 - m.cloudCover(site, t))
}

// ForecastError returns the relative half-width of the cloud forecast at
// the given horizon, following the accuracy figures the paper cites:
// ~95.5 % accurate within 12 h (±4.5 %), decaying to ~90 % at 72 h
// (±10 %), then saturating at ±15 % beyond three days.
func ForecastError(horizon time.Duration) float64 {
	h := horizon.Hours()
	switch {
	case h <= 0:
		return 0.005 // nowcast: still not perfect instrumentation
	case h <= 12:
		return 0.045 * h / 12 // grows to 4.5% at 12h
	case h <= 72:
		return 0.045 + (0.10-0.045)*(h-12)/60
	default:
		return 0.15
	}
}

// Forecast returns the interval estimate of production at target time t for
// a forecast issued at issuedAt. The interval is clamped to the physically
// possible [0, capacity × clear-sky] range and always contains Truth.
func (m *SolarModel) Forecast(site Site, t, issuedAt time.Time) interval.I {
	truth := m.Truth(site, t)
	maxPossible := site.CapacityKW * ClearSkyFactor(site.P, t)
	if maxPossible <= 0 {
		return interval.Exact(0)
	}
	err := ForecastError(t.Sub(issuedAt)) * site.CapacityKW
	return interval.New(truth-err, truth+err).Clamp(0, maxPossible)
}

// DaylightHours reports the approximate sunrise-to-sunset span at p on the
// date of t. Exposed because availability timetables and the example
// programs align behaviour with daylight.
func DaylightHours(p geo.Point, t time.Time) (from, to float64) {
	ut := t.UTC()
	doy := float64(ut.YearDay())
	decl := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*(284+doy)/365)
	lat := p.Lat * math.Pi / 180
	cosH := -math.Tan(lat) * math.Tan(decl)
	if cosH <= -1 {
		return 0, 24 // polar day
	}
	if cosH >= 1 {
		return 12, 12 // polar night
	}
	h := math.Acos(cosH) * 180 / math.Pi / 15 // half-day length in hours
	solarNoon := 12 - p.Lon/15
	return solarNoon - h, solarNoon + h
}

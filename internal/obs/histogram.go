package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default latency bucket upper bounds in seconds:
// exponential-ish coverage from 100 µs (a cached table lookup) to 10 s (a
// brute-force expansion on the largest profile). Values above the last
// bound land in the implicit +Inf bucket.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Histogram counts observations into fixed buckets. Observe is a bounded
// linear scan plus two atomic updates — zero allocations, no locks — so it
// is safe on the ranking hot path. Bucket bounds are immutable after
// construction. A nil *Histogram discards observations.
type Histogram struct {
	bounds []float64       // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits of the running sum
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and match no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Since records the seconds elapsed since t0; the idiomatic phase-duration
// form: defer h.Since(time.Now()) does not work (the argument would be
// evaluated late), so call sites use start := time.Now(); ...; h.Since(start).
func (h *Histogram) Since(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshotBuckets returns the cumulative per-bucket counts aligned with
// bounds plus the +Inf bucket (the exposition format is cumulative, like
// the Prometheus text format this mimics).
func (h *Histogram) snapshotBuckets() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

package fleet

// Chaos suite of the sharded fleet. The differential harness runs one
// single-process EIS over the whole inventory next to a gateway over N
// shard servers built from ShardEnv, and asserts:
//
//   - at fault rate 0 the gateway is byte-identical to the single EIS for
//     all six methods (including error responses and cache flags);
//   - under shard loss every response still answers 200 with a
//     tabletest-valid table, the shard-degraded tag lands exactly on the
//     dead shard's chargers (pinned against an independent oracle), and
//     nothing is dropped;
//   - hedged replicas mask a slow primary with no degradation at all;
//   - a slow shard without a replica cannot hold a request past the
//     per-shard deadline;
//   - a flapping shard degrades while its breaker is open and returns to
//     byte-identity after the half-open trial.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/cknn/tabletest"
	"ecocharge/internal/eis"
	"ecocharge/internal/fault"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

type fleetHarness struct {
	t      *testing.T
	env    *cknn.Env
	n      int
	part   Partition
	clk    *fakeClock
	inj    *fault.Injector
	single *httptest.Server
	gw     *Gateway
	gwts   *httptest.Server
}

type harnessOpts struct {
	n int
	// shapes receives the shard hosts in index order and returns the fault
	// schedule; nil runs fault-free.
	shapes func(hosts []string) map[string]fault.ShardShape
	// replicas lists shard indexes that get a replica server (same shard
	// environment, never faulted).
	replicas []int
	// gw tweaks the gateway options after the harness defaults.
	gw func(*Options)
}

func newFleetHarness(t *testing.T, o harnessOpts) *fleetHarness {
	t.Helper()
	h := &fleetHarness{t: t, env: testEnv(t), n: o.n, part: Partition{N: o.n}, clk: &fakeClock{t: fixedNow}}
	sopts := eis.ServerOptions{Clock: h.clk.Now}
	h.single = httptest.NewServer(eis.NewServer(h.env, sopts).Handler())
	t.Cleanup(h.single.Close)

	shards := make([]Shard, o.n)
	hosts := make([]string, o.n)
	for i := 0; i < o.n; i++ {
		se, err := ShardEnv(h.env, i, o.n)
		if err != nil {
			t.Fatalf("ShardEnv(%d): %v", i, err)
		}
		ts := httptest.NewServer(eis.NewServer(se, sopts).Handler())
		t.Cleanup(ts.Close)
		shards[i].URL = ts.URL
		hosts[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	for _, ri := range o.replicas {
		se, err := ShardEnv(h.env, ri, o.n)
		if err != nil {
			t.Fatalf("ShardEnv(%d): %v", ri, err)
		}
		rts := httptest.NewServer(eis.NewServer(se, sopts).Handler())
		t.Cleanup(rts.Close)
		shards[ri].Replica = rts.URL
	}

	opts := Options{
		Clock:            h.clk.Now,
		ShardTimeout:     5 * time.Second,
		HedgeDelay:       20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Second,
	}
	if o.shapes != nil {
		h.inj = fault.New(fault.Config{Seed: 1})
		fl := fault.NewFleet(h.inj, o.shapes(hosts))
		opts.HTTPClient = &http.Client{Transport: fl.Transport(nil, nil)}
	}
	if o.gw != nil {
		o.gw(&opts)
	}
	gw, err := NewGateway(shards, opts)
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	h.gw = gw
	h.gwts = httptest.NewServer(gw.Handler())
	t.Cleanup(h.gwts.Close)
	return h
}

func doReq(t *testing.T, base, method, pathq string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		req, err = http.NewRequest(method, base+pathq, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req, err = http.NewRequest(method, base+pathq, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, pathq, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// assertIdentical requires the gateway and the single EIS to answer the
// request with the same status and the same bytes, with no degraded marker.
func (h *fleetHarness) assertIdentical(label, method, pathq string, body []byte) {
	h.t.Helper()
	gs, gb, gh := doReq(h.t, h.gwts.URL, method, pathq, body)
	ss, sb, _ := doReq(h.t, h.single.URL, method, pathq, body)
	if gs != ss {
		h.t.Fatalf("%s: gateway status %d, single EIS %d (gateway body %.200s)", label, gs, ss, gb)
	}
	if !bytes.Equal(gb, sb) {
		h.t.Fatalf("%s: responses differ\ngateway: %.400s\nsingle:  %.400s", label, gb, sb)
	}
	if d := gh.Get(degradedHeader); d != "" {
		h.t.Fatalf("%s: fault-free response marked degraded (%s)", label, d)
	}
}

func offeringBody(t *testing.T, req eis.OfferingRequest) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// tableFromWire rebuilds a cknn table from wire entries so tabletest can
// validate gateway output with the same invariants as everything else.
func tableFromWire(t *testing.T, env *cknn.Env, entries []eis.OfferingEntry) cknn.OfferingTable {
	t.Helper()
	var tab cknn.OfferingTable
	for _, e := range entries {
		c, ok := env.Chargers.ByID(e.ChargerID)
		if !ok {
			t.Fatalf("entry charger %d not in environment", e.ChargerID)
		}
		tab.Entries = append(tab.Entries, cknn.Entry{
			Charger: c,
			SC:      interval.FromBounds(e.SC.Min, e.SC.Max),
			Comp: cknn.Components{
				L: e.L.Interval(), A: e.A.Interval(), D: e.D.Interval(),
				Degraded: cknn.Degraded(e.Degraded),
			},
		})
	}
	return tab
}

func fmtFloat(v float64) string { return fmt.Sprintf("%v", v) }

// TestChaosFleetByteIdentityFaultFree: at fault rate 0 a gateway over three
// shards is indistinguishable, byte for byte, from one EIS over the whole
// inventory — all six methods, repeated (cache-hitting) requests, and error
// responses included.
func TestChaosFleetByteIdentityFaultFree(t *testing.T) {
	h := newFleetHarness(t, harnessOpts{n: 3})
	center := h.env.Graph.Bounds().Center()
	at := fixedNow.Add(time.Hour).Format(time.RFC3339)

	// chargers — several radii including an empty one.
	for _, radius := range []float64{1, 3000, 50000} {
		pathq := eis.APIVersion + "/chargers?lat=" + fmtFloat(center.Lat) + "&lon=" + fmtFloat(center.Lon) + "&radius_m=" + fmtFloat(radius)
		h.assertIdentical("chargers", http.MethodGet, pathq, nil)
	}
	// chargers — the canonical 400 passes through byte-identically.
	h.assertIdentical("chargers bad params", http.MethodGet, eis.APIVersion+"/chargers?lat=abc&lon=8&radius_m=10", nil)

	// weather and availability — one charger per owning shard, plus the
	// canonical 404 for a charger that exists nowhere.
	covered := make(map[int]bool)
	for _, c := range h.env.Chargers.All() {
		if s := h.part.ShardOf(c.ID); !covered[s] {
			covered[s] = true
			q := "?charger=" + fmt.Sprint(c.ID) + "&t=" + at
			h.assertIdentical("weather", http.MethodGet, eis.APIVersion+"/weather"+q, nil)
			h.assertIdentical("availability", http.MethodGet, eis.APIVersion+"/availability"+q, nil)
		}
	}
	if len(covered) != 3 {
		t.Fatalf("test env covers %d shards, want 3", len(covered))
	}
	h.assertIdentical("weather 404", http.MethodGet, eis.APIVersion+"/weather?charger=999999", nil)

	// traffic.
	h.assertIdentical("traffic", http.MethodGet, eis.APIVersion+"/traffic?t="+at, nil)

	// offering — several anchors/parameter mixes, each twice so the second
	// pass compares the cache-hit responses (Cached must AND across shards).
	anchors := []geo.Point{
		center,
		{Lat: center.Lat + 0.01, Lon: center.Lon - 0.01},
		{Lat: center.Lat - 0.02, Lon: center.Lon + 0.02},
	}
	for i, p := range anchors {
		body := offeringBody(t, eis.OfferingRequest{
			Lat: p.Lat, Lon: p.Lon, K: 3 + i, RadiusM: 4000 + 1000*float64(i),
			Weights: eis.WeightsJSON{L: 2, A: 1, D: 1}, Now: fixedNow,
		})
		h.assertIdentical("offering", http.MethodPost, eis.APIVersion+"/offering", body)
		h.assertIdentical("offering cached", http.MethodPost, eis.APIVersion+"/offering", body)
	}
	// offering with defaulted parameters (zero K/radius/weights).
	h.assertIdentical("offering defaults", http.MethodPost, eis.APIVersion+"/offering",
		offeringBody(t, eis.OfferingRequest{Lat: center.Lat, Lon: center.Lon, Now: fixedNow}))
	// offering validation error passes through.
	h.assertIdentical("offering bad weights", http.MethodPost, eis.APIVersion+"/offering",
		offeringBody(t, eis.OfferingRequest{Lat: center.Lat, Lon: center.Lon, Weights: eis.WeightsJSON{L: -1}, Now: fixedNow}))

	// offering/trip — ReuseDistM 1 disables cross-segment adaptation, whose
	// cache geometry is legitimately shard-local (documented divergence).
	a := h.env.Graph.Node(0).P
	b := h.env.Graph.Node(roadnet.NodeID(h.env.Graph.NumNodes() - 1)).P
	trip, err := json.Marshal(eis.TripOfferingRequest{
		Waypoints: []eis.LatLon{{Lat: a.Lat, Lon: a.Lon}, {Lat: b.Lat, Lon: b.Lon}},
		Depart:    fixedNow, K: 3, RadiusM: 4000, ReuseDistM: 1, SegmentLenM: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.assertIdentical("offering/trip", http.MethodPost, eis.APIVersion+"/offering/trip", trip)
}

// blackoutForever is a window that never closes within a test.
var blackoutForever = []fault.Window{{From: 1, To: 1 << 60}}

// TestChaosFleetShardBlackout kills one of three shards after the gateway
// has seen it once. Every method must keep answering 200; the dead shard's
// chargers stay in every Offering Table at the ignorance bound with the
// full degraded mask, in exactly the positions an independent oracle
// predicts; radius queries stay byte-complete from the cached inventory.
func TestChaosFleetShardBlackout(t *testing.T) {
	h := newFleetHarness(t, harnessOpts{
		n: 3,
		shapes: func(hosts []string) map[string]fault.ShardShape {
			return map[string]fault.ShardShape{hosts[1]: {Blackouts: blackoutForever}}
		},
	})
	ctx := context.Background()
	h.gw.ProbeAll(ctx) // tick 0: healthy — inventories cached
	h.inj.Advance(1)   // shard 1 goes dark
	h.gw.ProbeAll(ctx)
	h.gw.ProbeAll(ctx) // two failed probe rounds trip the breaker (threshold 2)

	st := h.gw.Status()
	if st[1].ProbeOK || st[1].Breaker != "open" {
		t.Fatalf("shard 1 status after blackout: %+v", st[1])
	}
	if st[0].Breaker != "closed" || st[2].Breaker != "closed" {
		t.Fatalf("healthy shards tripped: %+v %+v", st[0], st[2])
	}
	if st[1].Inventory <= 0 {
		t.Fatalf("shard 1 inventory not retained through the outage: %+v", st[1])
	}

	center := h.env.Graph.Bounds().Center()
	const k, radiusM = 5, 6000
	weights := eis.WeightsJSON{L: 2, A: 1, D: 1}
	body := offeringBody(t, eis.OfferingRequest{
		Lat: center.Lat, Lon: center.Lon, K: k, RadiusM: radiusM, Weights: weights, Now: fixedNow,
	})

	// Independent oracle: rank the whole inventory on the single EIS, keep
	// the live shards' entries, and replace the dead shard's slice of the
	// pool with ignorance-bound synthesis over every in-radius charger it
	// owns. (Not just the chargers the engine would have offered: the engine
	// drops in-radius chargers whose derouting exceeds the budget, but a
	// gateway that cannot reach the shard cannot know deroutability — "never
	// drop" means every owned charger in radius comes back widened.) The
	// gateway must land on exactly this table.
	allBody := offeringBody(t, eis.OfferingRequest{
		Lat: center.Lat, Lon: center.Lon, K: h.env.Chargers.Len(), RadiusM: radiusM, Weights: weights, Now: fixedNow,
	})
	ss, sb, _ := doReq(t, h.single.URL, http.MethodPost, eis.APIVersion+"/offering", allBody)
	if ss != http.StatusOK {
		t.Fatalf("oracle request failed: %d %s", ss, sb)
	}
	var full eis.OfferingResponse
	if err := json.Unmarshal(sb, &full); err != nil {
		t.Fatal(err)
	}
	w := cknn.Weights{L: weights.L, A: weights.A, D: weights.D}.Normalized()
	var pool []eis.OfferingEntry
	for _, e := range full.Entries {
		if h.part.ShardOf(e.ChargerID) != 1 {
			pool = append(pool, e)
		}
	}
	for _, c := range h.env.Chargers.All() {
		if h.part.ShardOf(c.ID) == 1 && geo.Distance(center, c.P) <= radiusM {
			pool = append(pool, synthEntry(c, w))
		}
	}
	want := mergeEntries(pool, k)

	gs, gb, gh := doReq(t, h.gwts.URL, http.MethodPost, eis.APIVersion+"/offering", body)
	if gs != http.StatusOK {
		t.Fatalf("offering under blackout: status %d %s", gs, gb)
	}
	if d := gh.Get(degradedHeader); d != "1" {
		t.Fatalf("degraded header %q, want %q", d, "1")
	}
	var got eis.OfferingResponse
	if err := json.Unmarshal(gb, &got); err != nil {
		t.Fatal(err)
	}
	tabletest.Check(t, tableFromWire(t, h.env, got.Entries), k, "blackout offering")
	if len(got.Entries) != len(want) {
		t.Fatalf("merged table holds %d entries, oracle predicts %d", len(got.Entries), len(want))
	}
	sawSynth := false
	for i, e := range got.Entries {
		if e.ChargerID != want[i].ChargerID {
			t.Fatalf("position %d holds charger %d, oracle predicts %d", i, e.ChargerID, want[i].ChargerID)
		}
		if owner := h.part.ShardOf(e.ChargerID); owner == 1 {
			sawSynth = true
			if e.Degraded != uint8(cknn.DegradedAll) {
				t.Fatalf("dead-shard charger %d has mask %#x, want DegradedAll", e.ChargerID, e.Degraded)
			}
		} else if e.Degraded&uint8(cknn.DegradedShard) != 0 {
			t.Fatalf("live charger %d wrongly shard-tagged", e.ChargerID)
		}
	}
	if !sawSynth {
		t.Fatal("no dead-shard charger ranked into the table; pick a bigger radius")
	}

	// chargers: the cached inventory keeps radius queries byte-complete.
	pathq := eis.APIVersion + "/chargers?lat=" + fmtFloat(center.Lat) + "&lon=" + fmtFloat(center.Lon) + "&radius_m=6000"
	gs, gb, gh = doReq(t, h.gwts.URL, http.MethodGet, pathq, nil)
	_, sb, _ = doReq(t, h.single.URL, http.MethodGet, pathq, nil)
	if gs != http.StatusOK || !bytes.Equal(gb, sb) {
		t.Fatalf("chargers under blackout diverged (status %d)\ngateway: %.300s\nsingle:  %.300s", gs, gb, sb)
	}
	if gh.Get(degradedHeader) != "1" {
		t.Fatal("degraded chargers response not marked")
	}

	// weather/availability: dead-shard chargers answer with honest bounds.
	var deadC, liveC int64 = -1, -1
	var deadCap float64
	for _, c := range h.env.Chargers.All() {
		if h.part.ShardOf(c.ID) == 1 && deadC < 0 {
			deadC, deadCap = c.ID, c.PanelKW+c.WindKW
		}
		if h.part.ShardOf(c.ID) == 0 && liveC < 0 {
			liveC = c.ID
		}
	}
	at := fixedNow.Add(time.Hour)
	gs, gb, gh = doReq(t, h.gwts.URL, http.MethodGet, eis.APIVersion+"/weather?charger="+fmt.Sprint(deadC)+"&t="+at.Format(time.RFC3339), nil)
	if gs != http.StatusOK || gh.Get(degradedHeader) != "1" {
		t.Fatalf("degraded weather: status %d header %q", gs, gh.Get(degradedHeader))
	}
	var dw degradedWeather
	if err := json.Unmarshal(gb, &dw); err != nil {
		t.Fatal(err)
	}
	if !dw.Degraded || dw.ChargerID != deadC || !dw.At.Equal(at) {
		t.Fatalf("degraded weather echo wrong: %+v", dw)
	}
	if dw.ProductionKW.Min != 0 || dw.ProductionKW.Max != deadCap {
		t.Fatalf("degraded production [%v,%v], want [0,%v]", dw.ProductionKW.Min, dw.ProductionKW.Max, deadCap)
	}
	gs, gb, _ = doReq(t, h.gwts.URL, http.MethodGet, eis.APIVersion+"/availability?charger="+fmt.Sprint(deadC)+"&t="+at.Format(time.RFC3339), nil)
	var da degradedAvailability
	if err := json.Unmarshal(gb, &da); err != nil {
		t.Fatal(err)
	}
	if gs != http.StatusOK || !da.Degraded || da.Availability.Min != 0 || da.Availability.Max != 1 {
		t.Fatalf("degraded availability wrong: status %d %+v", gs, da)
	}
	// Live shards pass through untouched.
	h.assertIdentical("live weather during blackout", http.MethodGet,
		eis.APIVersion+"/weather?charger="+fmt.Sprint(liveC)+"&t="+at.Format(time.RFC3339), nil)
	// A charger the fleet has never heard of, owned by the dead shard, is an
	// honest 503 — not a guessed 404, not a fabricated estimate.
	unknown := int64(1_000_000)
	for h.part.ShardOf(unknown) != 1 {
		unknown++
	}
	if gs, _, _ = doReq(t, h.gwts.URL, http.MethodGet, eis.APIVersion+"/weather?charger="+fmt.Sprint(unknown), nil); gs != http.StatusServiceUnavailable {
		t.Fatalf("unknown charger on dead shard: status %d, want 503", gs)
	}

	// traffic: any healthy shard serves it byte-identically.
	h.assertIdentical("traffic during blackout", http.MethodGet, eis.APIVersion+"/traffic?t="+at.Format(time.RFC3339), nil)

	// offering/trip: every segment stays tabletest-valid with the dead
	// shard's chargers widened, never dropped.
	a := h.env.Graph.Node(0).P
	b := h.env.Graph.Node(roadnet.NodeID(h.env.Graph.NumNodes() - 1)).P
	trip, err := json.Marshal(eis.TripOfferingRequest{
		Waypoints: []eis.LatLon{{Lat: a.Lat, Lon: a.Lon}, {Lat: b.Lat, Lon: b.Lon}},
		Depart:    fixedNow, K: k, RadiusM: radiusM, Weights: weights, ReuseDistM: 1, SegmentLenM: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	gs, gb, gh = doReq(t, h.gwts.URL, http.MethodPost, eis.APIVersion+"/offering/trip", trip)
	if gs != http.StatusOK || gh.Get(degradedHeader) != "1" {
		t.Fatalf("trip under blackout: status %d header %q: %.300s", gs, gh.Get(degradedHeader), gb)
	}
	var tripResp eis.TripOfferingResponse
	if err := json.Unmarshal(gb, &tripResp); err != nil {
		t.Fatal(err)
	}
	if len(tripResp.Segments) == 0 || len(tripResp.SplitPoints) == 0 {
		t.Fatalf("trip response empty: %d segments, %d split points", len(tripResp.Segments), len(tripResp.SplitPoints))
	}
	synthTotal := 0
	for _, seg := range tripResp.Segments {
		tabletest.Check(t, tableFromWire(t, h.env, seg.Entries), k, fmt.Sprintf("blackout trip segment %d", seg.SegmentIndex))
		for _, e := range seg.Entries {
			if owner := h.part.ShardOf(e.ChargerID); owner == 1 {
				synthTotal++
				if e.Degraded != uint8(cknn.DegradedAll) {
					t.Fatalf("segment %d: dead-shard charger %d mask %#x", seg.SegmentIndex, e.ChargerID, e.Degraded)
				}
			}
		}
	}
	if synthTotal == 0 {
		t.Fatal("no dead-shard charger appears along the whole trip")
	}
}

// TestChaosFleetHedgedReplicaMasksSlowShard: with a replica configured, a
// slow primary is hedged and the fleet stays byte-identical to the single
// EIS — no degradation, bounded latency.
func TestChaosFleetHedgedReplicaMasksSlowShard(t *testing.T) {
	h := newFleetHarness(t, harnessOpts{
		n:        2,
		replicas: []int{1},
		shapes: func(hosts []string) map[string]fault.ShardShape {
			return map[string]fault.ShardShape{hosts[1]: {
				Slow:    []fault.Window{{From: 0, To: 1 << 60}},
				Latency: 400 * time.Millisecond,
			}}
		},
	})
	wins := met.hedgeWins.Value()
	center := h.env.Graph.Bounds().Center()
	start := time.Now()
	h.assertIdentical("offering via hedge", http.MethodPost, eis.APIVersion+"/offering",
		offeringBody(t, eis.OfferingRequest{Lat: center.Lat, Lon: center.Lon, K: 4, RadiusM: 5000, Now: fixedNow}))
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("hedged request took %v, slower than the injected primary latency", elapsed)
	}
	if met.hedgeWins.Value() == wins {
		t.Fatal("no hedge win recorded; the replica never served")
	}
}

// TestChaosFleetSlowShardBounded: without a replica, a hung shard cannot
// hold a request past the per-shard deadline — the fleet answers inside the
// budget with the slow shard honestly widened.
func TestChaosFleetSlowShardBounded(t *testing.T) {
	h := newFleetHarness(t, harnessOpts{
		n: 2,
		shapes: func(hosts []string) map[string]fault.ShardShape {
			return map[string]fault.ShardShape{hosts[1]: {
				Slow:    []fault.Window{{From: 1, To: 1 << 60}},
				Latency: 30 * time.Second,
			}}
		},
		gw: func(o *Options) { o.ShardTimeout = 300 * time.Millisecond },
	})
	ctx := context.Background()
	h.gw.ProbeAll(ctx) // tick 0: pull inventories
	h.inj.Advance(1)   // shard 1 starts hanging

	center := h.env.Graph.Bounds().Center()
	const k = 4
	body := offeringBody(t, eis.OfferingRequest{Lat: center.Lat, Lon: center.Lon, K: k, RadiusM: 6000, Now: fixedNow})
	start := time.Now()
	gs, gb, gh := doReq(t, h.gwts.URL, http.MethodPost, eis.APIVersion+"/offering", body)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("request took %v against a hung shard; deadline is 300ms", elapsed)
	}
	if gs != http.StatusOK || gh.Get(degradedHeader) != "1" {
		t.Fatalf("slow-shard offering: status %d header %q", gs, gh.Get(degradedHeader))
	}
	var got eis.OfferingResponse
	if err := json.Unmarshal(gb, &got); err != nil {
		t.Fatal(err)
	}
	tabletest.Check(t, tableFromWire(t, h.env, got.Entries), k, "slow-shard offering")
}

// TestChaosFleetFlapRecovery: an asymmetric API partition (probes keep
// passing) is caught by passive failure accounting, served degraded while
// the breaker is open, and the half-open trial restores byte-identity after
// the partition heals.
func TestChaosFleetFlapRecovery(t *testing.T) {
	h := newFleetHarness(t, harnessOpts{
		n: 2,
		shapes: func(hosts []string) map[string]fault.ShardShape {
			return map[string]fault.ShardShape{hosts[1]: {PartitionAPI: []fault.Window{{From: 1, To: 2}}}}
		},
	})
	ctx := context.Background()
	h.gw.ProbeAll(ctx)
	h.inj.Advance(1) // API partition: probes lie healthy

	center := h.env.Graph.Bounds().Center()
	const k = 3
	body := offeringBody(t, eis.OfferingRequest{Lat: center.Lat, Lon: center.Lon, K: k, RadiusM: 6000, Now: fixedNow})

	// Two passive failures open the breaker; both responses are already
	// valid degraded tables.
	for i := 0; i < 2; i++ {
		gs, gb, gh := doReq(t, h.gwts.URL, http.MethodPost, eis.APIVersion+"/offering", body)
		if gs != http.StatusOK || gh.Get(degradedHeader) != "1" {
			t.Fatalf("partitioned request %d: status %d header %q", i, gs, gh.Get(degradedHeader))
		}
		var got eis.OfferingResponse
		if err := json.Unmarshal(gb, &got); err != nil {
			t.Fatal(err)
		}
		tabletest.Check(t, tableFromWire(t, h.env, got.Entries), k, "partitioned offering")
	}
	if st := h.gw.Status(); st[1].Breaker != "open" || !st[1].ProbeOK {
		t.Fatalf("expected open breaker behind healthy probes, got %+v", st[1])
	}

	// Partition heals, but the open breaker keeps failing fast until the
	// cooldown elapses.
	h.inj.Advance(1)
	if _, _, gh := doReq(t, h.gwts.URL, http.MethodPost, eis.APIVersion+"/offering", body); gh.Get(degradedHeader) != "1" {
		t.Fatal("open breaker served the flapping shard before its cooldown")
	}

	// Cooldown elapses: the half-open trial hits the healed shard, closes
	// the breaker, and the fleet is byte-identical again.
	h.clk.Advance(31 * time.Second)
	h.assertIdentical("offering after recovery", http.MethodPost, eis.APIVersion+"/offering", body)
	if st := h.gw.Status(); st[1].Breaker != "closed" {
		t.Fatalf("breaker did not close after recovery: %+v", st[1])
	}
}

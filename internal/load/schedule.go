// Package load is the open-loop load harness: seeded arrival schedules,
// a trip-session query source over the trajectory sampler, an HTTP runner
// that measures latency from *intended* send time (coordinated-omission
// safe), response validation against the tabletest invariants, and the
// rate-sweep report that locates the saturation knee.
//
// Open loop means the arrival schedule is fixed before the first request:
// a slow server cannot slow the offered rate down, so queueing delay shows
// up in the recorded latencies instead of silently vanishing — the
// coordinated-omission failure mode of naive closed-loop harnesses.
package load

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Schedule is an ascending list of arrival offsets from the run start.
// Schedules are values: deterministic for a given generator input and safe
// to share read-only across worker goroutines.
type Schedule []time.Duration

// Span returns the offset of the last arrival (the nominal run length).
func (s Schedule) Span() time.Duration {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Constant returns n arrivals at exactly rate per second: the k-th arrival
// at k/rate. Deterministic by construction (no seed).
func Constant(rate float64, n int) (Schedule, error) {
	if err := checkScheduleArgs(rate, n); err != nil {
		return nil, err
	}
	s := make(Schedule, n)
	for i := range s {
		s[i] = time.Duration(float64(i+1) / rate * float64(time.Second))
	}
	return s, nil
}

// Poisson returns n arrivals of a Poisson process with the given rate:
// i.i.d. exponential inter-arrival times of mean 1/rate, the stochastic
// arrival model of the charging-demand literature. The same (rate, n,
// seed) triple yields the byte-identical schedule on every platform
// (math/rand's generator is specified, not implementation-defined).
func Poisson(rate float64, n int, seed int64) (Schedule, error) {
	if err := checkScheduleArgs(rate, n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(Schedule, n)
	var t float64 // seconds
	for i := range s {
		t += rng.ExpFloat64() / rate
		s[i] = time.Duration(t * float64(time.Second))
	}
	return s, nil
}

// SplitPoisson returns `workers` independent Poisson schedules of rate/w
// each, n arrivals in total, for pacing from multiple goroutines without
// sharing an RNG. By the superposition property the merged union is again
// a Poisson process at the full rate — TestSplitPoissonSuperposition pins
// this — so splitting changes nothing about the offered workload. Worker
// seeds derive deterministically from the base seed.
func SplitPoisson(rate float64, n int, seed int64, workers int) ([]Schedule, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("load: workers must be positive, got %d", workers)
	}
	if err := checkScheduleArgs(rate, n); err != nil {
		return nil, err
	}
	out := make([]Schedule, workers)
	per := rate / float64(workers)
	for w := range out {
		nw := n / workers
		if w < n%workers {
			nw++
		}
		if nw == 0 {
			out[w] = Schedule{}
			continue
		}
		s, err := Poisson(per, nw, seed+int64(w)*0x9e3779b9)
		if err != nil {
			return nil, err
		}
		out[w] = s
	}
	return out, nil
}

// MergeSchedules unions the parts into one ascending schedule.
func MergeSchedules(parts ...Schedule) Schedule {
	var total int
	for _, p := range parts {
		total += len(p)
	}
	merged := make(Schedule, 0, total)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	return merged
}

func checkScheduleArgs(rate float64, n int) error {
	if rate <= 0 {
		return fmt.Errorf("load: rate must be positive, got %v", rate)
	}
	if n <= 0 {
		return fmt.Errorf("load: arrival count must be positive, got %d", n)
	}
	return nil
}

package cknn

// BenchmarkObsOverhead prices the observability layer against the disabled
// path on the full EcoCharge method: the "instrumented" sub-benchmark runs
// with live handles on the default registry, "noop" swaps the package's
// metric set for nil-registry handles (every update discards). The two must
// stay within noise of each other — make bench-smoke runs this pair, and
// make bench-diff gates end-to-end ft_ms with instrumentation enabled.

import (
	"testing"

	"ecocharge/internal/obs"
)

func BenchmarkObsOverhead(b *testing.B) {
	env := testEnv(b)
	q := testQuery(env)
	modes := []struct {
		name string
		m    *engineMetrics
	}{
		{"instrumented", newEngineMetrics(obs.Default())},
		{"noop", newEngineMetrics(nil)},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			old := met
			met = mode.m
			defer func() { met = old }()
			m := NewEcoCharge(env, EcoChargeOptions{RadiusM: q.RadiusM})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset() // force the compute path: the full filtering phase
				table := m.Rank(q)
				if len(table.Entries) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// TestEngineMetricUpdatesZeroAlloc proves the instrumentation calls on the
// ranking hot path allocate nothing, live and disabled alike.
func TestEngineMetricUpdatesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	for _, m := range []*engineMetrics{newEngineMetrics(obs.Default()), newEngineMetrics(nil)} {
		old := met
		met = m
		if got := testing.AllocsPerRun(200, func() {
			met.pruneRejected.Inc()
			met.evaluated.Inc()
			countDegraded(DegradedL | DegradedD)
		}); got != 0 {
			met = old
			t.Fatalf("metric updates allocate %v per run, want 0", got)
		}
		met = old
	}
}

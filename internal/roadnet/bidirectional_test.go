package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"ecocharge/internal/geo"
)

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	g := GenerateUrban(UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.1, JitterFrac: 0.25, ArterialEach: 4, Seed: 13,
	})
	r := rand.New(rand.NewSource(14))
	for _, wf := range []struct {
		name string
		w    WeightFunc
	}{{"distance", DistanceWeight}, {"time", TimeWeight}, {"energy", EnergyWeight}} {
		for trial := 0; trial < 30; trial++ {
			src := NodeID(r.Intn(g.NumNodes()))
			dst := NodeID(r.Intn(g.NumNodes()))
			uni, ok1 := g.ShortestPath(src, dst, wf.w)
			bi, ok2 := g.BidirectionalShortestPath(src, dst, wf.w)
			if ok1 != ok2 {
				t.Fatalf("%s %d->%d: reachability disagrees", wf.name, src, dst)
			}
			if !ok1 {
				continue
			}
			if math.Abs(uni.Weight-bi.Weight) > 1e-6 {
				t.Fatalf("%s %d->%d: weight %v vs %v", wf.name, src, dst, bi.Weight, uni.Weight)
			}
			// The returned path must be valid and cost what it claims.
			if bi.Nodes[0] != src || bi.Nodes[len(bi.Nodes)-1] != dst {
				t.Fatalf("%s: endpoints wrong: %v", wf.name, bi.Nodes)
			}
			var sum float64
			for i := 1; i < len(bi.Nodes); i++ {
				found := false
				g.OutEdges(bi.Nodes[i-1], func(e Edge) {
					if e.To == bi.Nodes[i] && !found {
						sum += wf.w(e)
						found = true
					}
				})
				if !found {
					t.Fatalf("%s: path hop %d has no edge", wf.name, i)
				}
			}
			if math.Abs(sum-bi.Weight) > 1e-6 {
				t.Fatalf("%s: path sums to %v, claims %v", wf.name, sum, bi.Weight)
			}
		}
	}
}

func TestBidirectionalEdgeCases(t *testing.T) {
	g := tinyGraph()
	// Self.
	p, ok := g.BidirectionalShortestPath(2, 2, DistanceWeight)
	if !ok || p.Weight != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v", p)
	}
	// Unreachable (disconnected two-node graph).
	g2 := NewGraph(2, 0)
	g2.AddNode(geo.Point{Lat: 53, Lon: 8})
	g2.AddNode(geo.Point{Lat: 53.1, Lon: 8.1})
	g2.Freeze()
	if _, ok := g2.BidirectionalShortestPath(0, 1, DistanceWeight); ok {
		t.Fatal("path found in disconnected graph")
	}
	// Invalid IDs.
	if _, ok := g.BidirectionalShortestPath(-1, 2, DistanceWeight); ok {
		t.Fatal("invalid src accepted")
	}
}

func TestBidirectionalOneWay(t *testing.T) {
	g := NewGraph(3, 2)
	a := g.AddNode(geo.Point{Lat: 53, Lon: 8})
	b := g.AddNode(geo.Point{Lat: 53, Lon: 8.01})
	c := g.AddNode(geo.Point{Lat: 53, Lon: 8.02})
	g.AddEdge(a, b, 100, ClassLocal)
	g.AddEdge(b, c, 100, ClassLocal)
	g.Freeze()
	if p, ok := g.BidirectionalShortestPath(a, c, DistanceWeight); !ok || p.Weight != 200 {
		t.Fatalf("forward chain: %+v %v", p, ok)
	}
	if _, ok := g.BidirectionalShortestPath(c, a, DistanceWeight); ok {
		t.Fatal("one-way chain traversed backwards")
	}
}

func BenchmarkBidirectionalVsUnidirectional(b *testing.B) {
	g := GenerateUrban(DefaultUrbanConfig())
	r := rand.New(rand.NewSource(1))
	pairs := make([][2]NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(r.Intn(g.NumNodes())), NodeID(r.Intn(g.NumNodes()))}
	}
	b.Run("unidirectional", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%64]
			g.ShortestPath(p[0], p[1], DistanceWeight)
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%64]
			g.BidirectionalShortestPath(p[0], p[1], DistanceWeight)
		}
	})
}

// Package fixture exercises the ctxflow analyzer: the file poses as part
// of internal/eis (see the import path in lint_test.go), so both rules
// apply — ctx-bearing functions must thread their context through blocking
// calls, and unbounded worker loops must observe ctx.
package fixture

import (
	"context"
	"net/http"
	"time"
)

// GoodTimer waits the cancellable way.
func GoodTimer(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// GoodRequest builds the request with the context attached.
func GoodRequest(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	_ = req
	return nil
}

// GoodNoCtx has no context to thread; a plain sleep is fine.
func GoodNoCtx() {
	time.Sleep(time.Millisecond)
}

// BadSleep ignores the deadline it was handed.
func BadSleep(ctx context.Context) {
	time.Sleep(time.Second) // flagged
}

// BadSleepValue hides the same bug behind a function value.
func BadSleepValue(ctx context.Context) {
	wait := time.Sleep // flagged: the reference, not just a call
	wait(time.Millisecond)
}

// BadGet uses the context-less entry point.
func BadGet(ctx context.Context, url string) {
	resp, err := http.Get(url) // flagged
	if err == nil {
		resp.Body.Close()
	}
}

// BadNewRequest drops the context at construction time.
func BadNewRequest(ctx context.Context, url string) {
	req, _ := http.NewRequest(http.MethodGet, url, nil) // flagged
	_ = req
}

// BadHandler shows *http.Request counts as carrying a context.
func BadHandler(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Millisecond) // flagged
}

// GoodLoop can always be cancelled.
func GoodLoop(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

// GoodBreak has a data-driven exit; not unbounded.
func GoodBreak(ch chan int) {
	for {
		if <-ch == 0 {
			break
		}
	}
}

// BadLoop drains forever with no way out.
func BadLoop(ch chan int) {
	for { // flagged: never observes ctx
		<-ch
	}
}

// SuppressedWitness documents a deliberate process-lifetime pump.
func SuppressedWitness(events chan int) {
	//ecolint:ignore ctxflow process-lifetime pump; torn down only when the process exits
	for {
		<-events
	}
}

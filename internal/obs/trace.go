package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a position in a trace: the trace the work belongs
// to and the span that is currently active. It crosses process boundaries
// through the X-Trace-Id/X-Span-Id headers.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

type spanCtxKey struct{}

// ContextWith returns ctx carrying sc; StartSpan on the result creates a
// child of sc.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// FromContext extracts the active span context, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Propagation headers. IDs travel as fixed-width lowercase hex.
const (
	HeaderTraceID = "X-Trace-Id"
	HeaderSpanID  = "X-Span-Id"
)

// InjectHTTP stamps the active span context of ctx onto the headers; a
// ctx without a span leaves the headers untouched.
func InjectHTTP(ctx context.Context, h http.Header) {
	sc, ok := FromContext(ctx)
	if !ok {
		return
	}
	h.Set(HeaderTraceID, formatID(sc.TraceID))
	h.Set(HeaderSpanID, formatID(sc.SpanID))
}

// ExtractHTTP reads a propagated span context from request headers.
func ExtractHTTP(h http.Header) (SpanContext, bool) {
	trace, err1 := strconv.ParseUint(h.Get(HeaderTraceID), 16, 64)
	span, err2 := strconv.ParseUint(h.Get(HeaderSpanID), 16, 64)
	if err1 != nil || err2 != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: trace, SpanID: span}
	return sc, sc.Valid()
}

func formatID(id uint64) string { return strconv.FormatUint(id, 16) }

// TracerOptions tune a Tracer. The zero value exports every span with the
// wall clock.
type TracerOptions struct {
	// SampleEvery exports one trace in SampleEvery (decided on the trace
	// ID, so a trace is exported whole or not at all). 0 and 1 export
	// everything.
	SampleEvery uint64
	// Seed decorrelates ID streams between tracers; equal seeds produce
	// equal ID sequences (deterministic tests).
	Seed uint64
	// Clock is overridable for tests; nil selects time.Now.
	Clock func() time.Time
}

// Tracer creates spans and exports finished ones as JSON lines to its
// sink. A nil *Tracer is the disabled tracer: StartSpan returns the
// context unchanged and a nil span whose End is a no-op, so call sites
// never branch on configuration. Tracer methods are safe for concurrent
// use; the sink sees whole lines (writes are serialized).
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	every uint64
	clock func() time.Time
	seed  uint64
	ids   atomic.Uint64
}

// NewTracer returns a tracer exporting to w (nil discards).
func NewTracer(w io.Writer, opts TracerOptions) *Tracer {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	every := opts.SampleEvery
	if every == 0 {
		every = 1
	}
	return &Tracer{w: w, every: every, clock: clock, seed: opts.Seed}
}

// nextID returns a process-unique non-zero ID: splitmix64 over an atomic
// counter, seeded so concurrent tracers do not collide. No wall clock, no
// global PRNG — the sequence is deterministic per (seed, call order).
func (t *Tracer) nextID() uint64 {
	for {
		x := t.seed + t.ids.Add(1)*0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// Span is one timed operation inside a trace.
type Span struct {
	tracer   *Tracer
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	start    time.Time
}

// StartSpan opens a span named name. When ctx already carries a span
// context (local parent or one extracted from HTTP headers) the new span
// joins that trace as a child; otherwise it roots a fresh trace. The
// returned context carries the new span for further nesting.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{tracer: t, name: name, start: t.clock(), spanID: t.nextID()}
	if parent, ok := FromContext(ctx); ok {
		sp.traceID = parent.TraceID
		sp.parentID = parent.SpanID
	} else {
		sp.traceID = t.nextID()
	}
	return ContextWith(ctx, SpanContext{TraceID: sp.traceID, SpanID: sp.spanID}), sp
}

// Context returns the span's own context identifiers (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// End closes the span and exports it if its trace is sampled. End is
// idempotent in effect only for nil spans; real spans must End exactly
// once.
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.export(s, s.tracer.clock().Sub(s.start))
}

// SpanRecord is the JSON-line export form of one finished span. IDs are
// lowercase hex; Parent is empty for trace roots.
type SpanRecord struct {
	Trace  string    `json:"trace"`
	Span   string    `json:"span"`
	Parent string    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	DurNS  int64     `json:"dur_ns"`
}

func (t *Tracer) export(s *Span, dur time.Duration) {
	if t.w == nil || s.traceID%t.every != 0 {
		return
	}
	rec := SpanRecord{
		Trace: formatID(s.traceID),
		Span:  formatID(s.spanID),
		Name:  s.name,
		Start: s.start,
		DurNS: int64(dur),
	}
	if s.parentID != 0 {
		rec.Parent = formatID(s.parentID)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // a span never breaks the traced operation
	}
	line = append(line, '\n')
	t.mu.Lock()
	_, _ = t.w.Write(line) // sink errors cannot fail the traced operation
	t.mu.Unlock()
}

// ParseSpanRecords decodes the JSON-line export (tests and offline
// tooling).
func ParseSpanRecords(data []byte) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

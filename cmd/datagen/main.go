// Command datagen materializes a dataset scenario to disk: the charger
// inventory (PlugShare-style CSV), the trip workload (CSV of node paths),
// and a CDGS-style 15-minute solar production series — the synthetic
// equivalents of the external data feeds the paper consumes.
//
// Example:
//
//	datagen -dataset Oldenburg -out ./data -production-days 2
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/experiment"
	"ecocharge/internal/snapshot"
)

func main() {
	var (
		dataset = flag.String("dataset", "Oldenburg", "dataset profile: Oldenburg, California, T-drive, Geolife")
		scale   = flag.Float64("scale", 0.01, "trip-count scale")
		seed    = flag.Int64("seed", 42, "scenario seed")
		out     = flag.String("out", "data", "output directory")
		days    = flag.Int("production-days", 1, "days of 15-minute production samples")
		bundle  = flag.String("bundle", "", "also write the whole scenario as a snapshot zip to this path")
	)
	flag.Parse()

	if err := run(*dataset, *scale, *seed, *out, *days, *bundle); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, out string, days int, bundle string) error {
	sc, err := experiment.BuildScenario(dataset, scale, seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	chargersPath := filepath.Join(out, "chargers.csv")
	if err := writeChargers(sc, chargersPath); err != nil {
		return err
	}
	fmt.Printf("wrote %d chargers to %s\n", sc.Env.Chargers.Len(), chargersPath)

	tripsPath := filepath.Join(out, "trips.csv")
	if err := writeTrips(sc, tripsPath); err != nil {
		return err
	}
	fmt.Printf("wrote %d trips to %s\n", len(sc.Trips), tripsPath)

	prodPath := filepath.Join(out, "production.csv")
	n, err := writeProduction(sc, prodPath, days)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d production samples to %s\n", n, prodPath)

	if bundle != "" {
		f, err := os.Create(bundle)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := snapshot.Save(f, sc); err != nil {
			return fmt.Errorf("writing bundle: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote scenario bundle to %s\n", bundle)
	}
	return nil
}

func writeChargers(sc *experiment.Scenario, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sc.Env.Chargers.WriteCSV(f); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func writeTrips(sc *experiment.Scenario, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"trip_id", "depart_utc", "length_m", "nodes"}); err != nil {
		return err
	}
	for _, trip := range sc.Trips {
		nodes := make([]byte, 0, len(trip.Path.Nodes)*6)
		for i, n := range trip.Path.Nodes {
			if i > 0 {
				nodes = append(nodes, ' ')
			}
			nodes = strconv.AppendInt(nodes, int64(n), 10)
		}
		rec := []string{
			strconv.FormatInt(trip.ID, 10),
			trip.Depart.UTC().Format(time.RFC3339),
			strconv.FormatFloat(trip.Path.Weight, 'f', 0, 64),
			string(nodes),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func writeProduction(sc *experiment.Scenario, path string, days int) (int, error) {
	if days < 1 {
		days = 1
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"charger_id", "start_utc", "kw"}); err != nil {
		return 0, err
	}
	from := sc.Start.Truncate(24 * time.Hour)
	to := from.AddDate(0, 0, days)
	count := 0
	for i := range sc.Env.Chargers.All() {
		c := &sc.Env.Chargers.All()[i]
		for _, smp := range charger.ProductionSeries(sc.Env.Solar, c, from, to) {
			rec := []string{
				strconv.FormatInt(smp.ChargerID, 10),
				smp.Start.UTC().Format(time.RFC3339),
				strconv.FormatFloat(smp.KW, 'f', 3, 64),
			}
			if err := w.Write(rec); err != nil {
				return count, err
			}
			count++
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return count, err
	}
	return count, f.Close()
}

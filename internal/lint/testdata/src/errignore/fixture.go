// Package fixture exercises the errignore analyzer.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 0, nil }

// Bad discards errors three different ways: all flagged.
func Bad() {
	mayFail()
	value()
	fmt.Errorf("wrapped: %w", mayFail())
}

// Good shows every accepted form.
func Good(f *os.File, w *strings.Builder) error {
	_ = mayFail()                   // explicit acknowledgement
	defer f.Close()                 // deferred cleanup is idiomatic
	fmt.Println("progress")         // stdout print: unactionable error
	fmt.Fprintln(os.Stderr, "note") // std stream
	fmt.Fprintln(w, "buffered")     // strings.Builder never fails
	return mayFail()
}

// Suppressed shows the escape hatch.
func Suppressed() {
	//ecolint:ignore errignore fixture for the suppression story
	mayFail()
}

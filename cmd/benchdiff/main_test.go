package main

import (
	"strings"
	"testing"
)

func mkRow(method string, ft float64) row {
	return row{Fig: "6", Dataset: "Oldenburg", Method: method, FtMs: ft}
}

func byKey(ds []delta) map[string]delta {
	out := make(map[string]delta, len(ds))
	for _, d := range ds {
		out[d.key] = d
	}
	return out
}

func TestCompareRegressionRules(t *testing.T) {
	seed := map[string]row{}
	cur := map[string]row{}
	add := func(m row, into map[string]row) { into[m.key()] = m }

	add(mkRow("Fast", 0.20), seed) // +50% but within absolute slack
	add(mkRow("Fast", 0.30), cur)
	add(mkRow("Slow", 10.0), seed) // +50% and beyond slack: regression
	add(mkRow("Slow", 15.0), cur)
	add(mkRow("Fine", 10.0), seed) // +5%: inside tolerance
	add(mkRow("Fine", 10.5), cur)
	add(mkRow("Better", 10.0), seed) // improvement
	add(mkRow("Better", 4.0), cur)
	add(mkRow("New", 1.0), cur) // only in current: reported, not failed

	ds := byKey(compare(seed, cur, 0.10, 0.25))
	if ds["6|Oldenburg|Fast|"].regressed {
		t.Error("sub-slack delta flagged as regression")
	}
	if !ds["6|Oldenburg|Slow|"].regressed {
		t.Error("50% regression beyond slack not flagged")
	}
	if ds["6|Oldenburg|Fine|"].regressed {
		t.Error("inside-tolerance delta flagged")
	}
	if d := ds["6|Oldenburg|Better|"]; d.regressed || d.pct > -50 {
		t.Errorf("improvement mishandled: %+v", d)
	}
	if d := ds["6|Oldenburg|New|"]; !d.onlyInOne || d.missingIn != "seed" || d.regressed {
		t.Errorf("current-only row mishandled: %+v", d)
	}
}

func TestRenderMentionsRegression(t *testing.T) {
	seed := map[string]row{mkRow("M", 10).key(): mkRow("M", 10)}
	cur := map[string]row{mkRow("M", 20).key(): mkRow("M", 20)}
	var b strings.Builder
	render(&b, "s.json", "c.json", compare(seed, cur, 0.10, 0.25), 0.10, 0.25)
	if !strings.Contains(b.String(), "REGRESSED") {
		t.Fatalf("report lacks REGRESSED marker:\n%s", b.String())
	}
}

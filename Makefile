# EcoCharge build targets. Everything is stdlib Go; no external tools.

GO ?= go

.PHONY: all build test race vet bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cknn/ ./internal/eis/ ./internal/sim/

vet:
	$(GO) vet ./...
	gofmt -l .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation figure (paper Figs. 6-9 + the design,
# horizon, and scalability supplements) as text tables.
figures:
	$(GO) run ./cmd/ecobench -fig all -scale 0.002 -reps 5

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxi_idle
	$(GO) run ./examples/commute
	$(GO) run ./examples/server_mode
	$(GO) run ./examples/fleet_balance
	$(GO) run ./examples/custom_world

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
